"""Unit tests for the popularity ranking cross-check."""

import pytest

from repro.scan.alexa import (
    PAPER_NOLISTING_RANKS,
    crosscheck_popularity,
    plant_popular_nolisting,
)
from repro.scan.detect import DomainClass, DomainVerdict
from repro.scan.population import (
    DomainCategory,
    PopulationConfig,
    SyntheticInternet,
)


def build_internet(num_domains=3000, seed=42):
    return SyntheticInternet(PopulationConfig(num_domains=num_domains), seed=seed)


def perfect_verdicts(internet):
    """Verdicts matching ground truth exactly (pipeline is tested elsewhere)."""
    mapping = {
        DomainCategory.SINGLE_MX: DomainClass.ONE_MX,
        DomainCategory.MULTI_MX: DomainClass.MULTI_MX_NO_NOLISTING,
        DomainCategory.NOLISTING: DomainClass.NOLISTING,
        DomainCategory.MISCONFIGURED: DomainClass.DNS_MISCONFIGURED,
    }
    return [
        DomainVerdict(domain=t.name, domain_class=mapping[t.category])
        for t in internet.domains
    ]


class TestPlanting:
    def test_planted_ranks_assigned(self):
        internet = build_internet()
        planted = plant_popular_nolisting(internet)
        assert len(planted) == len(PAPER_NOLISTING_RANKS)
        rank_of = {t.name: t.alexa_rank for t in internet.domains}
        assert sorted(rank_of[name] for name in planted) == sorted(
            PAPER_NOLISTING_RANKS
        )

    def test_ranks_remain_a_permutation(self):
        internet = build_internet()
        plant_popular_nolisting(internet)
        ranks = sorted(t.alexa_rank for t in internet.domains)
        assert ranks == list(range(1, internet.num_domains + 1))

    def test_no_accidental_adopters_in_popular_band(self):
        internet = build_internet()
        plant_popular_nolisting(internet)
        popular_nolisting = [
            t
            for t in internet.domains_in(DomainCategory.NOLISTING)
            if t.alexa_rank <= 1000
        ]
        assert len(popular_nolisting) == len(PAPER_NOLISTING_RANKS)

    def test_raises_when_too_few_nolisting_domains(self):
        internet = build_internet(num_domains=200)  # ~1 nolisting domain
        with pytest.raises(ValueError):
            plant_popular_nolisting(internet)


class TestCrossCheck:
    def test_matches_paper_buckets(self):
        internet = build_internet()
        plant_popular_nolisting(internet)
        result = crosscheck_popularity(internet, perfect_verdicts(internet))
        # "one domain in the top-15, two in the top-500 and other two in
        # the top-1000" -> cumulative 1 / 3 / 5.
        assert result.top15 == 1
        assert result.top500 == 3
        assert result.top1000 == 5

    def test_ranked_adopters_sorted(self):
        internet = build_internet()
        plant_popular_nolisting(internet)
        result = crosscheck_popularity(internet, perfect_verdicts(internet))
        assert result.ranked_adopters == sorted(result.ranked_adopters)
        assert result.ranked_adopters[:5] == sorted(PAPER_NOLISTING_RANKS)
