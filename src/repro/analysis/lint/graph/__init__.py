"""Whole-program analysis: symbol table, call graph, interprocedural rules.

Phase two of the determinism linter (``python -m repro.analysis``).  The
per-file checkers in :mod:`~repro.analysis.lint.checkers` see one module
at a time; the rules here see the whole program:

* :mod:`~repro.analysis.lint.graph.symbols` — per-module symbol
  collection: functions, classes and methods, module-level globals,
  import bindings (including lazy in-function imports) and
  ``from x import *`` re-exports;
* :mod:`~repro.analysis.lint.graph.project` — the cross-module layer:
  name resolution through import chains and star re-exports, class
  hierarchy, the call graph, reachability, the ``--graph-json`` dump and
  the API-surface/dead-symbol report;
* :mod:`~repro.analysis.lint.graph.rules` — the interprocedural rule
  suite (DET001, RNG002, SHM001, ASY001, CCH001), run by
  :func:`~repro.analysis.lint.analyze.analyze_paths`.

Everything is standard library only, like the rest of the linter.
"""

from .project import CallSite, FunctionNode, Project
from .rules import (
    GRAPH_RULE_CLASSES,
    BlockingCallInAsync,
    CacheKeyInstability,
    GraphRule,
    RngAcrossProcessBoundary,
    SharedMutableModuleState,
    TaintedEntryPoint,
    default_graph_rules,
)
from .symbols import (
    ClassSymbol,
    FunctionSymbol,
    GlobalBinding,
    ImportBinding,
    ModuleSymbols,
    collect_module,
    dotted_module_name,
)

__all__ = [
    "GRAPH_RULE_CLASSES",
    "BlockingCallInAsync",
    "CacheKeyInstability",
    "CallSite",
    "ClassSymbol",
    "FunctionNode",
    "FunctionSymbol",
    "GlobalBinding",
    "GraphRule",
    "ImportBinding",
    "ModuleSymbols",
    "Project",
    "RngAcrossProcessBoundary",
    "SharedMutableModuleState",
    "TaintedEntryPoint",
    "collect_module",
    "default_graph_rules",
    "dotted_module_name",
]
