"""Unit tests for the instrumented testbed and the exempting policy."""

from repro.core.testbed import (
    Defense,
    ExemptingPolicy,
    Testbed,
    TestbedConfig,
)
from repro.dns.mxutil import resolve_exchangers
from repro.greylist.policy import GreylistPolicy
from repro.net.address import IPv4Address
from repro.net.host import SMTP_PORT
from repro.sim.clock import Clock
from repro.smtp.message import Message
from repro.smtp.server import ConnectionPolicy, PolicyDecision

CLIENT = IPv4Address.parse("198.51.100.7")


class TestTestbedConstruction:
    def test_plain_testbed_single_working_mx(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        assert len(testbed.domain_setup.hosts) == 1
        assert testbed.domain_setup.primary_host.is_listening(SMTP_PORT)
        assert testbed.greylist is None

    def test_nolisting_testbed_dead_primary(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NOLISTING))
        primary, secondary = testbed.domain_setup.hosts
        assert not primary.is_listening(SMTP_PORT)
        assert secondary.is_listening(SMTP_PORT)
        exchangers = resolve_exchangers(testbed.resolver, "victim.example")
        assert len(exchangers) == 2

    def test_greylisting_testbed_has_policy(self):
        testbed = Testbed(
            TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=42.0)
        )
        assert testbed.greylist is not None
        assert testbed.greylist.delay == 42.0

    def test_both_defenses(self):
        testbed = Testbed(TestbedConfig(defense=Defense.BOTH))
        assert testbed.greylist is not None
        primary, secondary = testbed.domain_setup.hosts
        assert not primary.is_listening(SMTP_PORT)

    def test_bot_addresses_disjoint_from_server_addresses(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        bot_address = testbed.allocate_bot_address()
        server_addresses = {
            address
            for host in testbed.domain_setup.hosts
            for address in host.addresses
        }
        assert bot_address not in server_addresses


class TestMailboxQueries:
    def test_delivered_to_filters_by_recipient(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        session = testbed.server.session_factory(CLIENT)
        message = Message(
            sender="a@x.example", recipients=["u1@victim.example"]
        )
        session.ehlo("c")
        session.mail_from(message.sender)
        session.rcpt_to("u1@victim.example")
        session.data(message)
        assert len(testbed.delivered_to("u1@victim.example")) == 1
        assert testbed.delivered_to("u2@victim.example") == []

    def test_protected_vs_unprotected_counting(self):
        config = TestbedConfig(
            defense=Defense.GREYLISTING,
            unprotected_recipients={"postmaster@victim.example"},
        )
        testbed = Testbed(config)
        session = testbed.server.session_factory(CLIENT)
        message = Message(
            sender="a@x.example",
            recipients=["postmaster@victim.example"],
            campaign_id="c1",
        )
        session.ehlo("c")
        session.mail_from(message.sender)
        session.rcpt_to("postmaster@victim.example")
        session.data(message)
        assert testbed.spam_delivered_to_unprotected() == 1
        assert testbed.spam_delivered_to_protected() == 0
        assert testbed.campaign_ids_seen() == {"c1"}


class TestExemptingPolicy:
    def test_exempt_recipient_bypasses_inner_policy(self):
        clock = Clock()
        inner = GreylistPolicy(clock=clock, delay=300)
        policy = ExemptingPolicy(inner, exempt={"postmaster@victim.example"})
        decision = policy.on_rcpt_to(
            CLIENT, "a@x.example", "postmaster@victim.example"
        )
        assert decision.accept
        # Protected recipients still greylisted.
        decision = policy.on_rcpt_to(CLIENT, "a@x.example", "u@victim.example")
        assert not decision.accept

    def test_exemption_case_insensitive(self):
        inner = GreylistPolicy(clock=Clock(), delay=300)
        policy = ExemptingPolicy(inner, exempt={"PostMaster@victim.example"})
        assert policy.on_rcpt_to(
            CLIENT, "a@x.example", "postmaster@victim.example"
        ).accept

    def test_other_hooks_delegate(self):
        class Rejecting(ConnectionPolicy):
            def on_helo(self, client, helo_name):
                return PolicyDecision.reject(None)

        policy = ExemptingPolicy(Rejecting(), exempt=set())
        assert not policy.on_helo(CLIENT, "x").accept
        assert policy.on_connect(CLIENT).accept
