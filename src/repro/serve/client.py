"""Asyncio client for the policy-delegation protocol.

What a Postfix ``check_policy_service`` endpoint looks like from the
MTA's side: write a stanza, read an ``action``.  The client exists for
the load generator, the CI smoke check and the test suite; it keeps the
connection open and supports pipelining (write many stanzas, then
collect the responses in order), mirroring how Postfix reuses policy
connections across SMTP sessions.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Sequence

from .protocol import (
    SMTPD_ACCESS_POLICY,
    format_request,
    iter_response_actions,
)


def make_request_attrs(
    client_address: str,
    sender: str,
    recipient: str,
    stamp: float | None = None,
    **extra: str,
) -> Dict[str, str]:
    """Build the attribute map of one RCPT-time policy request."""
    attrs: Dict[str, str] = {
        "request": SMTPD_ACCESS_POLICY,
        "protocol_state": "RCPT",
        "protocol_name": "SMTP",
        "client_address": client_address,
        "sender": sender,
        "recipient": recipient,
    }
    if stamp is not None:
        attrs["stamp"] = repr(stamp)
    attrs.update(extra)
    return attrs


class PolicyClient:
    """One policy connection (request/response or pipelined)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._residue = bytearray()

    @classmethod
    async def connect(cls, host: str, port: int) -> "PolicyClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, attrs: Dict[str, str]) -> str:
        """One round trip: send a stanza, await its action."""
        actions = await self.pipeline([attrs])
        return actions[0]

    async def pipeline(
        self, requests: Sequence[Dict[str, str]]
    ) -> List[str]:
        """Send every stanza, then read the responses in order."""
        payload = b"".join(format_request(attrs) for attrs in requests)
        return await self.send_raw(payload, len(requests))

    async def send_raw(self, payload: bytes, expected: int) -> List[str]:
        """Write pre-rendered wire bytes; await ``expected`` actions.

        The load generator pre-renders each connection's burst once so
        the timed section measures the server, not client formatting.
        """
        self._writer.write(payload)
        await self._writer.drain()
        actions: List[str] = []
        residue = self._residue
        while len(actions) < expected:
            data = await self._reader.read(65536)
            if not data:
                raise ConnectionError(
                    f"server closed with {expected - len(actions)} "
                    "response(s) outstanding"
                )
            residue += data
            actions.extend(iter_response_actions(residue))
        return actions

    async def send_counted(self, payload: bytes, expected: int) -> int:
        """Write pre-rendered bytes; count responses without parsing them.

        The open-loop load path: one C-level ``count(b"\\n\\n")`` per read
        replaces per-stanza parsing, so client-side response handling
        costs almost nothing and the measured number is the server's.
        Responses are single ``action=`` lines, so terminators never
        overlap; one byte of carry handles a terminator split across
        reads.
        """
        self._writer.write(payload)
        await self._writer.drain()
        seen = 0
        carry = b""
        while seen < expected:
            data = await self._reader.read(65536)
            if not data:
                raise ConnectionError(
                    f"server closed with {expected - seen} response(s) "
                    "outstanding"
                )
            if carry and data[0] == 0x0A:
                seen += 1
                data = data[1:]
                if not data:
                    carry = b""
                    continue
            seen += data.count(b"\n\n")
            carry = b"\n" if data[-1] == 0x0A and not data.endswith(b"\n\n") else b""
        return seen

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
