"""The shipped checker suite.

One module per invariant family; :func:`all_checkers` instantiates the
full suite in rule-id order.  Adding a checker is: write the class,
import it here, append it to :data:`CHECKER_CLASSES`, document the rule
in ``docs/ARCHITECTURE.md`` § *Determinism contract*.
"""

from __future__ import annotations

from typing import List, Type

from ..framework import Checker
from .clock import WallClockRead
from .defaults import MutableDefaultArgument
from .exceptions import FaultSwallowingExcept
from .ordering import UnorderedFloatSum, UnorderedIteration
from .rng import DirectRandomUse, LiteralSeedStream
from .slots import HotDataclassWithoutSlots

CHECKER_CLASSES: List[Type[Checker]] = [
    WallClockRead,          # CLK001
    MutableDefaultArgument,  # DEF001
    FaultSwallowingExcept,  # EXC001
    UnorderedFloatSum,      # FLT001
    UnorderedIteration,     # ORD001
    DirectRandomUse,        # RNG001
    LiteralSeedStream,      # SEED001
    HotDataclassWithoutSlots,  # SLT001
]


def all_checkers() -> List[Checker]:
    """A fresh instance of every registered checker."""
    return [cls() for cls in CHECKER_CLASSES]


__all__ = [
    "CHECKER_CLASSES",
    "all_checkers",
    "DirectRandomUse",
    "FaultSwallowingExcept",
    "HotDataclassWithoutSlots",
    "LiteralSeedStream",
    "MutableDefaultArgument",
    "UnorderedFloatSum",
    "UnorderedIteration",
    "WallClockRead",
]
