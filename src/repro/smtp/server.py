"""Server-side SMTP session state machine with pluggable policies.

The :class:`SMTPSession` implements the RFC 5321 command sequence
(HELO/EHLO → MAIL FROM → RCPT TO → DATA → QUIT) as an explicit state
machine.  Site policy — greylisting, recipient validation, rate limits — is
injected via :class:`ConnectionPolicy` hooks so the same engine serves the
plain, nolisted-secondary and greylisted server configurations used in the
experiments.

Every accepted message and every policy rejection is appended to the owning
:class:`SMTPServer`'s log, which is what the measurement harness analyses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..net.address import IPv4Address
from ..sim.clock import Clock
from . import replies
from .message import AddressSyntaxError, Envelope, Message, validate_address
from .replies import Reply


class SessionState(enum.Enum):
    """States of the server-side SMTP dialogue."""

    CONNECTED = "connected"     # banner sent, waiting for HELO/EHLO
    GREETED = "greeted"         # HELO done, waiting for MAIL
    MAIL = "mail"               # MAIL FROM accepted, waiting for RCPT
    RCPT = "rcpt"               # >=1 RCPT accepted, waiting for DATA/RCPT
    DATA = "data"               # inside message text
    CLOSED = "closed"


@dataclass
class PolicyDecision:
    """Outcome of a policy hook: accept, or reject with a specific reply."""

    accept: bool
    reply: Optional[Reply] = None

    @classmethod
    def ok(cls) -> "PolicyDecision":
        return cls(accept=True)

    @classmethod
    def reject(cls, reply: Reply) -> "PolicyDecision":
        return cls(accept=False, reply=reply)


class ConnectionPolicy:
    """Site policy hooks; the default accepts everything.

    Subclasses (e.g. :class:`repro.greylist.policy.GreylistPolicy` adapters)
    override individual hooks.  Hooks run *pre-acceptance* in the paper's
    terminology — before the message body is accepted.
    """

    def fingerprint(self) -> tuple:
        """Canonical description of this policy's decision function.

        The batch engine's session-outcome cache keys on this: two servers
        whose policies share a fingerprint hand identical replies to
        identical dialogues (given the same policy *phase*, which the
        caller encodes separately).  Stateless policies are fully captured
        by their class name; stateful subclasses must include every
        constructor knob that changes a decision.
        """
        return (type(self).__name__,)

    def on_connect(self, client: IPv4Address) -> PolicyDecision:
        return PolicyDecision.ok()

    def on_helo(self, client: IPv4Address, helo_name: str) -> PolicyDecision:
        return PolicyDecision.ok()

    def on_mail_from(self, client: IPv4Address, sender: str) -> PolicyDecision:
        return PolicyDecision.ok()

    def on_rcpt_to(
        self, client: IPv4Address, sender: str, recipient: str
    ) -> PolicyDecision:
        return PolicyDecision.ok()

    def on_message(
        self, client: IPv4Address, envelope: Envelope, message: Message
    ) -> PolicyDecision:
        return PolicyDecision.ok()


class CompositePolicy(ConnectionPolicy):
    """Chains several policies; the first rejection wins at every hook.

    Real servers stack pre-acceptance tests (DNSBL lookup, then
    greylisting, ...) exactly this way — and the order matters, because a
    DNSBL hit should spare the greylist a triplet insertion.
    """

    def __init__(self, policies: List[ConnectionPolicy]) -> None:
        if not policies:
            raise ValueError("composite policy needs at least one policy")
        self.policies = list(policies)

    def fingerprint(self) -> tuple:
        """Ordered composition of the chained fingerprints (order matters:
        a DNSBL hit before greylisting spares a triplet insertion)."""
        return ("composite",) + tuple(p.fingerprint() for p in self.policies)

    def _first_reject(self, invoke) -> PolicyDecision:
        for policy in self.policies:
            decision = invoke(policy)
            if not decision.accept:
                return decision
        return PolicyDecision.ok()

    def on_connect(self, client: IPv4Address) -> PolicyDecision:
        return self._first_reject(lambda p: p.on_connect(client))

    def on_helo(self, client: IPv4Address, helo_name: str) -> PolicyDecision:
        return self._first_reject(lambda p: p.on_helo(client, helo_name))

    def on_mail_from(self, client: IPv4Address, sender: str) -> PolicyDecision:
        return self._first_reject(lambda p: p.on_mail_from(client, sender))

    def on_rcpt_to(
        self, client: IPv4Address, sender: str, recipient: str
    ) -> PolicyDecision:
        return self._first_reject(
            lambda p: p.on_rcpt_to(client, sender, recipient)
        )

    def on_message(
        self, client: IPv4Address, envelope: Envelope, message: Message
    ) -> PolicyDecision:
        return self._first_reject(
            lambda p: p.on_message(client, envelope, message)
        )


@dataclass
class DeliveryRecord:
    """One envelope's fate at this server, as recorded in the server log."""

    timestamp: float
    client: IPv4Address
    sender: str
    recipient: str
    accepted: bool
    reply_code: int
    stage: str                      # which hook decided: rcpt / data / ...
    message_id: Optional[int] = None
    campaign_id: Optional[str] = None


@dataclass
class SMTPServerStats:
    connections: int = 0
    messages_accepted: int = 0
    envelopes_accepted: int = 0
    envelopes_rejected: int = 0
    protocol_errors: int = 0
    #: sessions torn down mid-dialogue (client vanished / connection reset)
    sessions_aborted: int = 0


class SMTPServer:
    """A mail server: session factory + mailbox + structured log."""

    def __init__(
        self,
        hostname: str,
        clock: Clock,
        policy: Optional[ConnectionPolicy] = None,
        local_domains: Optional[List[str]] = None,
        valid_recipients: Optional[set] = None,
    ) -> None:
        self.hostname = hostname
        self.clock = clock
        self.policy = policy if policy is not None else ConnectionPolicy()
        self.local_domains = [d.lower() for d in (local_domains or [])]
        self.valid_recipients = (
            {validate_address(r) for r in valid_recipients}
            if valid_recipients is not None
            else None
        )
        self.mailbox: List[Message] = []
        self.log: List[DeliveryRecord] = []
        self.stats = SMTPServerStats()

    # ------------------------------------------------------------------
    # Listener-factory protocol (plugs into VirtualHost.listen)
    # ------------------------------------------------------------------
    def session_factory(self, client: IPv4Address) -> "SMTPSession":
        self.stats.connections += 1
        return SMTPSession(self, client)

    # ------------------------------------------------------------------
    # Recipient validation (pre-greylisting, as noted in §II of the paper:
    # servers refuse unknown recipients before applying greylisting)
    # ------------------------------------------------------------------
    def recipient_is_local(self, recipient: str) -> bool:
        if not self.local_domains:
            return True
        domain = recipient.rsplit("@", 1)[1]
        return domain in self.local_domains

    def recipient_exists(self, recipient: str) -> bool:
        if self.valid_recipients is None:
            return True
        return recipient in self.valid_recipients

    # ------------------------------------------------------------------
    # Log plumbing
    # ------------------------------------------------------------------
    def record(
        self,
        client: IPv4Address,
        sender: str,
        recipient: str,
        accepted: bool,
        reply_code: int,
        stage: str,
        message_id: Optional[int] = None,
        campaign_id: Optional[str] = None,
    ) -> None:
        self.log.append(
            DeliveryRecord(
                timestamp=self.clock.now,
                client=client,
                sender=sender,
                recipient=recipient,
                accepted=accepted,
                reply_code=reply_code,
                stage=stage,
                message_id=message_id,
                campaign_id=campaign_id,
            )
        )
        if accepted:
            self.stats.envelopes_accepted += 1
        else:
            self.stats.envelopes_rejected += 1

    def accepted_messages(self) -> List[Message]:
        return list(self.mailbox)

    def __repr__(self) -> str:
        return (
            f"SMTPServer({self.hostname!r}, accepted="
            f"{self.stats.messages_accepted})"
        )


class SMTPSession:
    """One client connection's dialogue with an :class:`SMTPServer`."""

    def __init__(self, server: SMTPServer, client: IPv4Address) -> None:
        self.server = server
        self.client = client
        self.state = SessionState.CONNECTED
        self.helo_name: Optional[str] = None
        self.sender: Optional[str] = None
        self.recipients: List[str] = []
        decision = server.policy.on_connect(client)
        if decision.accept:
            self.banner = replies.ready(server.hostname)
        else:
            self.banner = decision.reply or Reply(
                replies.CODE_SERVICE_UNAVAILABLE, "Service not available"
            )
            self.state = SessionState.CLOSED

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def helo(self, name: str) -> Reply:
        return self._greet(name, extended=False)

    def ehlo(self, name: str) -> Reply:
        return self._greet(name, extended=True)

    def _greet(self, name: str, extended: bool) -> Reply:
        if self.state is SessionState.CLOSED:
            return replies.bad_sequence("connection closed")
        decision = self.server.policy.on_helo(self.client, name)
        if not decision.accept:
            return decision.reply or Reply(replies.CODE_SERVICE_UNAVAILABLE)
        self.helo_name = name
        self.state = SessionState.GREETED
        greeting = f"{self.server.hostname} Hello {name}"
        if extended:
            greeting += " [PIPELINING SIZE 10485760]"
        return replies.ok(greeting)

    def mail_from(self, sender: str) -> Reply:
        if self.state not in (SessionState.GREETED, SessionState.MAIL):
            if self.state is SessionState.CONNECTED:
                # RFC 5321 requires EHLO first; many servers tolerate it,
                # ours is strict (it helps expose bot dialects).
                self.server.stats.protocol_errors += 1
                return replies.bad_sequence("HELO/EHLO")
            return replies.bad_sequence("MAIL")
        try:
            sender = validate_address(sender)
        except AddressSyntaxError:
            self.server.stats.protocol_errors += 1
            return Reply(replies.CODE_PARAM_SYNTAX_ERROR, "bad sender address")
        decision = self.server.policy.on_mail_from(self.client, sender)
        if not decision.accept:
            return decision.reply or Reply(replies.CODE_MAILBOX_BUSY)
        self.sender = sender
        self.recipients = []
        self.state = SessionState.MAIL
        return replies.ok(f"2.1.0 <{sender}> sender ok")

    def rcpt_to(self, recipient: str) -> Reply:
        if self.state not in (SessionState.MAIL, SessionState.RCPT):
            self.server.stats.protocol_errors += 1
            return replies.bad_sequence("MAIL FROM")
        try:
            recipient = validate_address(recipient)
        except AddressSyntaxError:
            self.server.stats.protocol_errors += 1
            return Reply(replies.CODE_PARAM_SYNTAX_ERROR, "bad recipient address")
        assert self.sender is not None
        # Recipient validation happens before greylisting (paper §II).
        if not self.server.recipient_is_local(recipient):
            reply = Reply(replies.CODE_USER_NOT_LOCAL, "relaying denied")
            self.server.record(
                self.client, self.sender, recipient, False, reply.code, "relay"
            )
            return reply
        if not self.server.recipient_exists(recipient):
            reply = replies.mailbox_unavailable(recipient)
            self.server.record(
                self.client, self.sender, recipient, False, reply.code, "rcpt"
            )
            return reply
        decision = self.server.policy.on_rcpt_to(
            self.client, self.sender, recipient
        )
        if not decision.accept:
            reply = decision.reply or Reply(replies.CODE_MAILBOX_BUSY)
            self.server.record(
                self.client, self.sender, recipient, False, reply.code, "policy"
            )
            return reply
        self.recipients.append(recipient)
        self.state = SessionState.RCPT
        return replies.ok(f"2.1.5 <{recipient}> recipient ok")

    def data(self, message: Message) -> Reply:
        """DATA phase collapsed into one call carrying the message."""
        if self.state is not SessionState.RCPT or not self.recipients:
            self.server.stats.protocol_errors += 1
            return replies.bad_sequence("RCPT TO")
        assert self.sender is not None
        accepted_any = False
        for recipient in self.recipients:
            envelope = Envelope(
                sender=self.sender,
                recipient=recipient,
                message_id=message.message_id,
                campaign_id=message.campaign_id,
            )
            decision = self.server.policy.on_message(
                self.client, envelope, message
            )
            code = replies.CODE_OK if decision.accept else (
                decision.reply.code if decision.reply else replies.CODE_MAILBOX_BUSY
            )
            self.server.record(
                self.client,
                self.sender,
                recipient,
                decision.accept,
                code,
                "data",
                message_id=message.message_id,
                campaign_id=message.campaign_id,
            )
            accepted_any = accepted_any or decision.accept
        if accepted_any:
            self.server.mailbox.append(message)
            self.server.stats.messages_accepted += 1
        # Per-recipient DATA responses are not expressible in SMTP; report
        # success when any recipient accepted (matching real MTA behaviour
        # for mixed outcomes at RCPT time — here policy only runs at RCPT
        # for greylisting, so mixed DATA outcomes only occur in tests).
        self.state = SessionState.GREETED
        self.sender = None
        self.recipients = []
        if accepted_any:
            return replies.ok("2.0.0 message accepted for delivery")
        return Reply(replies.CODE_TRANSACTION_FAILED, "transaction failed")

    def abort(self) -> None:
        """Abrupt teardown (connection reset): drop any open transaction.

        Unlike :meth:`quit` no reply crosses the wire — the peer is gone.
        The open envelope is discarded, exactly what an MTA does when the
        socket dies before DATA completed.
        """
        if self.state is SessionState.CLOSED:
            return
        self.state = SessionState.CLOSED
        self.sender = None
        self.recipients = []
        self.server.stats.sessions_aborted += 1

    def rset(self) -> Reply:
        if self.state is SessionState.CLOSED:
            return replies.bad_sequence("connection closed")
        if self.state is not SessionState.CONNECTED:
            self.state = SessionState.GREETED
        self.sender = None
        self.recipients = []
        return replies.ok("2.0.0 reset")

    def quit(self) -> Reply:
        self.state = SessionState.CLOSED
        return replies.closing(self.server.hostname)

    def __repr__(self) -> str:
        return f"SMTPSession(client={self.client}, state={self.state.value})"
