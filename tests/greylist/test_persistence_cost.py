"""Unit tests for triplet-database persistence and cost accounting."""

import io

import pytest

from repro.greylist.cost import measure_cost
from repro.greylist.persistence import (
    FORMAT_HEADER,
    PersistenceError,
    dump_store,
    load_store,
    save_compacted,
    snapshot_size_bytes,
)
from repro.greylist.policy import GreylistPolicy
from repro.greylist.store import DAY, TripletStore
from repro.greylist.triplet import Triplet
from repro.greylist.whitelist import Whitelist
from repro.net.address import IPv4Address
from repro.sim.clock import Clock

CLIENT = IPv4Address.parse("198.51.100.7")


def triplet(i=0):
    return Triplet(CLIENT, f"s{i}@x.example", "r@y.example")


class TestPersistence:
    def _populated_store(self):
        clock = Clock()
        store = TripletStore(clock)
        store.observe(triplet(0))
        clock.advance_by(400)
        store.observe(triplet(0))
        store.mark_passed(triplet(0))
        store.observe(triplet(1))
        return clock, store

    def test_dump_load_roundtrip(self):
        clock, store = self._populated_store()
        text = dump_store(store)
        assert text.startswith(FORMAT_HEADER)
        restored = load_store(text, clock)
        assert restored.size == 2
        entry = restored.lookup(triplet(0))
        assert entry.passed
        assert entry.passed_at == 400.0
        assert entry.attempts == 2
        unpassed = restored.lookup(triplet(1))
        assert not unpassed.passed

    def test_restored_store_continues_policy(self):
        # Restart semantics: a passed triplet must stay passed.
        clock, store = self._populated_store()
        restored = load_store(dump_store(store), clock)
        policy = GreylistPolicy(clock=clock, delay=300, store=restored)
        assert policy.on_rcpt_to(CLIENT, "s0@x.example", "r@y.example").accept
        assert not policy.on_rcpt_to(CLIENT, "s9@x.example", "r@y.example").accept

    def test_expired_entries_dropped_on_load(self):
        clock, store = self._populated_store()
        text = dump_store(store)
        late_clock = Clock(start=clock.now + 3 * DAY)
        restored = load_store(text, late_clock)
        # The unconfirmed triplet(1) is past its retry window; the passed
        # one is still inside the whitelist lifetime.
        assert restored.lookup(triplet(1)) is None
        assert restored.lookup(triplet(0)) is not None

    def test_expired_entries_counted_on_load(self):
        # Regression: load_store used to drop expired entries silently, so
        # a loaded store's expiry counters drifted from a live replay's.
        clock, store = self._populated_store()
        text = dump_store(store)
        late_clock = Clock(start=clock.now + 40 * DAY)  # expires both
        restored = load_store(text, late_clock)
        assert restored.size == 0
        assert restored.expired_unconfirmed == 1
        assert restored.expired_confirmed == 1

    def test_load_malformed_line_names_line_number(self):
        text = FORMAT_HEADER + "\nok-is-not-enough\nonly three fields\n"
        with pytest.raises(PersistenceError, match="line 2"):
            load_store(text, Clock())

    def test_header_required(self):
        with pytest.raises(PersistenceError):
            load_store("not a snapshot", Clock())

    def test_version_header_mismatch_rejected(self):
        text = "# repro-greylist-db v2\n"
        with pytest.raises(PersistenceError):
            load_store(text, Clock())

    def test_none_windows_fall_back_to_store_defaults(self):
        clock, store = self._populated_store()
        restored = load_store(dump_store(store), clock)
        defaults = TripletStore(clock)
        assert restored.retry_window == defaults.retry_window
        assert restored.whitelist_lifetime == defaults.whitelist_lifetime

    def test_explicit_windows_respected(self):
        clock, store = self._populated_store()
        restored = load_store(
            dump_store(store),
            clock,
            retry_window=100.0,
            whitelist_lifetime=500.0,
        )
        assert restored.retry_window == 100.0
        assert restored.whitelist_lifetime == 500.0

    def test_malformed_line_rejected(self):
        text = FORMAT_HEADER + "\nonly three fields here\n"
        with pytest.raises(PersistenceError):
            load_store(text, Clock())

    def test_inconsistent_entry_rejected(self):
        text = (
            FORMAT_HEADER
            + "\n198.51.100.7 s@x.example r@y.example 100.0 50.0 1 -\n"
        )
        with pytest.raises(PersistenceError):
            load_store(text, Clock())

    def test_save_compacted_sweeps(self):
        clock, store = self._populated_store()
        clock.advance_by(3 * DAY)  # expires the unconfirmed entry
        stream = io.StringIO()
        written = save_compacted(store, stream)
        assert written == 1
        assert "s1@x.example" not in stream.getvalue()

    def test_snapshot_size_grows_with_entries(self):
        clock = Clock()
        store = TripletStore(clock)
        empty = snapshot_size_bytes(store)
        for i in range(10):
            store.observe(triplet(i))
        assert snapshot_size_bytes(store) > empty


class TestCostAccounting:
    def test_cost_of_simple_run(self):
        clock = Clock()
        policy = GreylistPolicy(clock=clock, delay=300)
        policy.on_rcpt_to(CLIENT, "s@x.example", "r@y.example")   # defer
        clock.advance_by(100)
        policy.on_rcpt_to(CLIENT, "s@x.example", "r@y.example")   # defer
        clock.advance_by(300)
        policy.on_rcpt_to(CLIENT, "s@x.example", "r@y.example")   # pass
        report = measure_cost(policy)
        assert report.decisions == 3
        assert report.deferrals == 2
        assert report.passes == 1
        assert report.extra_connections == 2
        assert report.extra_connections_per_delivery == 2.0
        assert report.extra_bytes == 2 * 350 + 250
        assert report.db_entries == 1
        assert report.db_bytes > 0

    def test_whitelist_hits_cost_nothing_extra(self):
        clock = Clock()
        whitelist = Whitelist()
        whitelist.add_address(CLIENT)
        policy = GreylistPolicy(clock=clock, delay=300, whitelist=whitelist)
        policy.on_rcpt_to(CLIENT, "s@x.example", "r@y.example")
        report = measure_cost(policy)
        assert report.whitelist_hits == 1
        assert report.deferrals == 0
        assert report.extra_bytes == 0
        assert report.db_entries == 0

    def test_zero_passes_cost_ratio(self):
        clock = Clock()
        policy = GreylistPolicy(clock=clock, delay=300)
        policy.on_rcpt_to(CLIENT, "s@x.example", "r@y.example")
        report = measure_cost(policy)
        assert report.extra_connections_per_delivery == 1.0
