"""Extension bench: wire-level fingerprinting — dialects and banners.

Two passive-measurement extensions the paper's introduction motivates:

* the SMTP-dialect fingerprinting of Stringhini et al. ("details about the
  protocol can also be used to fingerprint botnets"), run over a mixed
  MTA/bot traffic sample; and
* the banner-grab software survey implicit in the scans.io "SMTP Banner
  Grab and StartTLS" dataset the adoption measurement consumed.
"""

import pytest

from repro.analysis.tables import format_percent, render_table
from repro.core.dialect_survey import run_dialect_survey
from repro.scan.banner import (
    BannerGrabScanner,
    HostSoftwareAssignment,
    survey_software,
)
from repro.scan.population import PopulationConfig, SyntheticInternet

from _util import emit


def run_both():
    dialects = run_dialect_survey(num_sessions=400, seed=29)
    internet = SyntheticInternet(PopulationConfig(num_domains=4000), seed=42)
    assignment = HostSoftwareAssignment(internet, seed=42)
    banners = survey_software(BannerGrabScanner(internet, assignment).scan(0))
    return dialects, banners


def test_dialects_and_banners(benchmark):
    dialects, banners = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = render_table(
        headers=("Metric", "Value"),
        rows=[
            ("sessions observed", dialects.sessions),
            ("dialect attribution", format_percent(dialects.attribution_accuracy)),
            ("bot precision", format_percent(dialects.precision)),
            ("bot recall", format_percent(dialects.recall)),
        ],
        title="Passive SMTP-dialect fingerprinting over mixed traffic",
    )
    emit("Dialects — bot-vs-MTA wire fingerprinting", table)

    table = render_table(
        headers=("MTA software", "Hosts", "Share"),
        rows=[
            (name, count, format_percent(count / banners.total_hosts))
            for name, count in banners.ranked()
        ],
        title=(
            f"Banner-grab software survey ({banners.total_hosts} hosts, "
            f"STARTTLS on {format_percent(banners.starttls_fraction)})"
        ),
    )
    emit("Banners — MTA software distribution", table)

    # Dialect fingerprinting: perfect attribution of the known dialects,
    # no clean MTA flagged, but near-compliant bots slip through (recall<1).
    assert dialects.attribution_accuracy == 1.0
    assert dialects.precision == 1.0
    assert 0.5 < dialects.recall < 1.0

    # Banner survey recovers the planted market structure.
    assert banners.ranked()[0][0] == "postfix"
    assert banners.fraction("postfix") == pytest.approx(0.33, abs=0.05)
    assert banners.fraction("exim") == pytest.approx(0.28, abs=0.05)
    assert 0.5 < banners.starttls_fraction < 0.85
