"""Greylisting resource-cost accounting.

The paper's §VI notes that greylisting and nolisting "have a cost for the
system (for example in terms of disk space and computation resources) and
for the Internet community at large (because of the increased traffic and
bandwidth)" — and that knowing when the techniques stop paying that cost
back matters.  This module turns a :class:`GreylistPolicy` run into those
cost numbers:

* **server side** — triplet-database entries and serialized size, policy
  decisions computed;
* **network side** — extra SMTP connections induced (every deferral forces
  the sender to come back), and the wasted bytes of the rejected dialogues.

The estimates use the canonical sizes of a minimal SMTP rejection exchange
rather than pretending byte-accuracy: the point is relative cost across
configurations, which is what the cost ablation compares.
"""

from __future__ import annotations

from dataclasses import dataclass

from .persistence import snapshot_size_bytes
from .policy import GreylistAction, GreylistPolicy

#: Bytes on the wire for one deferred delivery attempt: TCP handshake
#: overhead aside, banner + EHLO + MAIL + RCPT + 450 reply + teardown.
BYTES_PER_DEFERRED_ATTEMPT = 350

#: Extra bytes a retry that finally passes repeats (the whole preamble).
BYTES_PER_RETRY_PREAMBLE = 250


@dataclass
class GreylistCostReport:
    """Resource costs of one greylisting deployment run."""

    decisions: int                 # policy invocations (CPU-cost proxy)
    deferrals: int                 # 450 replies sent
    passes: int                    # accepted retries
    whitelist_hits: int
    db_entries: int                # live triplet-database entries
    db_bytes: int                  # serialized database size
    extra_connections: int         # connections forced by deferrals
    extra_bytes: int               # wasted wire bytes

    @property
    def extra_connections_per_delivery(self) -> float:
        if self.passes == 0:
            return float(self.deferrals)
        return self.extra_connections / self.passes


def measure_cost(policy: GreylistPolicy) -> GreylistCostReport:
    """Compute the cost report for everything ``policy`` has seen."""
    deferrals = 0
    passes = 0
    whitelist_hits = 0
    for event in policy.events:
        if event.deferred:
            deferrals += 1
        elif event.action in (
            GreylistAction.PASSED,
            GreylistAction.PASSED_KNOWN,
        ):
            passes += 1
        elif event.action in (
            GreylistAction.WHITELISTED,
            GreylistAction.AUTO_WHITELISTED,
        ):
            whitelist_hits += 1
    # Every deferral means the sender must open one more connection; the
    # retry also repeats the session preamble.
    extra_connections = deferrals
    extra_bytes = (
        deferrals * BYTES_PER_DEFERRED_ATTEMPT
        + passes * BYTES_PER_RETRY_PREAMBLE
    )
    return GreylistCostReport(
        decisions=len(policy.events),
        deferrals=deferrals,
        passes=passes,
        whitelist_hits=whitelist_hits,
        db_entries=policy.store.size,
        db_bytes=snapshot_size_bytes(policy.store),
        extra_connections=extra_connections,
        extra_bytes=extra_bytes,
    )
