"""Extension bench: greylisting keying variants (Sochor's variant space).

Compares what the greylisting database keys on — full triplet, /24
triplet, sender-domain, client-only — along the three axes the choice
moves: sender-rotation resistance, provider-farm tolerance, and database
load.
"""

import math

from repro.analysis.tables import format_seconds, mark, render_table
from repro.core.variants import compare_variants
from repro.greylist.keying import KeyStrategy

from _util import emit


def test_keying_variants(benchmark):
    results = benchmark(compare_variants)
    by_strategy = {r.strategy: r for r in results}

    def farm_cell(delay):
        return "never" if math.isinf(delay) else format_seconds(delay)

    table = render_table(
        headers=(
            "Key strategy",
            "Stops rotating spam",
            "Spam delivered",
            "Farm delay",
            "DB entries",
        ),
        rows=[
            (
                r.strategy.value,
                mark(r.rotation_resistant),
                f"{r.rotating_spam_delivered}/20",
                farm_cell(r.farm_delivery_delay),
                r.db_entries_under_rotation,
            )
            for r in results
        ],
        title="Greylisting variants: rotation resistance vs tolerance vs cost",
    )
    emit("Variants — what to key greylisting on", table)

    # The classic triplet is the only rotation-resistant exact-IP variant,
    # at the price of the largest database.
    full = by_strategy[KeyStrategy.FULL_TRIPLET]
    client_only = by_strategy[KeyStrategy.CLIENT_ONLY]
    assert full.rotation_resistant
    assert not client_only.rotation_resistant
    assert full.db_entries_under_rotation > client_only.db_entries_under_rotation

    # /24 keying is the only variant that spares rotating provider farms.
    net = by_strategy[KeyStrategy.CLIENT_NET_TRIPLET]
    assert net.farm_delivery_delay < full.farm_delivery_delay
    assert net.rotation_resistant
