"""Bench: regenerate Figure 3 (Kelihos delivery-delay CDFs at 5 s / 300 s)."""

from repro.analysis.cdf import ks_distance
from repro.botnet.families import KELIHOS
from repro.core.greylist_experiment import run_greylist_experiment
from repro.core.reports import figure3_text

from _util import emit


def run_both_thresholds():
    res5 = run_greylist_experiment(KELIHOS, 5.0, num_messages=100)
    res300 = run_greylist_experiment(KELIHOS, 300.0, num_messages=100)
    return res5, res300


def test_figure3_kelihos_cdfs(benchmark):
    res5, res300 = benchmark.pedantic(run_both_thresholds, rounds=2, iterations=1)
    emit("Figure 3a — CDF of spam delivery delay, threshold 5 s", figure3_text(res5))
    emit("Figure 3b — CDF of spam delivery delay, threshold 300 s", figure3_text(res300))

    # Kelihos defeats greylisting at both thresholds.
    assert not res5.blocked and not res300.blocked
    assert res5.delivery_rate == 1.0
    assert res300.delivery_rate == 1.0

    # "the malware is not able to take advantage of a shorter greylisting
    # threshold": the two curves are (nearly) identical.
    assert ks_distance(res5.delay_cdf(), res300.delay_cdf()) <= 0.2

    # "designed to retry ... after a minimum delay of 300 seconds": even at
    # a 5 s threshold, nothing is delivered before 300 s.
    assert min(res5.delivery_delays) >= 300.0
    # Most deliveries complete on the first retry (the 300-600 s cluster).
    assert res300.delay_cdf().at(600.0) >= 0.5
