"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.clock import Clock
from repro.sim.events import EventScheduler, SchedulerError


@pytest.fixture
def sched():
    return EventScheduler(Clock())


class TestScheduling:
    def test_schedule_at_and_run(self, sched):
        fired = []
        sched.schedule_at(5.0, lambda: fired.append(sched.now))
        sched.run()
        assert fired == [5.0]

    def test_schedule_in_relative(self, sched):
        sched.clock.advance_to(10.0)
        fired = []
        sched.schedule_in(2.5, lambda: fired.append(sched.now))
        sched.run()
        assert fired == [12.5]

    def test_schedule_in_past_rejected(self, sched):
        sched.clock.advance_to(10.0)
        with pytest.raises(SchedulerError):
            sched.schedule_at(9.0, lambda: None)
        with pytest.raises(SchedulerError):
            sched.schedule_in(-1.0, lambda: None)

    def test_events_fire_in_time_order(self, sched):
        fired = []
        sched.schedule_at(3.0, lambda: fired.append("c"))
        sched.schedule_at(1.0, lambda: fired.append("a"))
        sched.schedule_at(2.0, lambda: fired.append("b"))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self, sched):
        fired = []
        for name in "abcde":
            sched.schedule_at(1.0, lambda n=name: fired.append(n))
        sched.run()
        assert fired == list("abcde")

    def test_callback_can_reschedule(self, sched):
        fired = []

        def tick():
            fired.append(sched.now)
            if len(fired) < 3:
                sched.schedule_in(1.0, tick)

        sched.schedule_at(0.0, tick)
        sched.run()
        assert fired == [0.0, 1.0, 2.0]


class TestCancellation:
    def test_cancel_pending(self, sched):
        fired = []
        handle = sched.schedule_at(1.0, lambda: fired.append("x"))
        assert sched.cancel(handle) is True
        sched.run()
        assert fired == []

    def test_cancel_twice_returns_false(self, sched):
        handle = sched.schedule_at(1.0, lambda: None)
        assert sched.cancel(handle) is True
        assert sched.cancel(handle) is False

    def test_cancel_after_fire_returns_false(self, sched):
        handle = sched.schedule_at(1.0, lambda: None)
        sched.run()
        assert sched.cancel(handle) is False

    def test_pending_excludes_cancelled(self, sched):
        handle = sched.schedule_at(1.0, lambda: None)
        sched.schedule_at(2.0, lambda: None)
        sched.cancel(handle)
        assert sched.pending == 1


class TestRunLimits:
    def test_run_until_stops_before_later_events(self, sched):
        fired = []
        sched.schedule_at(1.0, lambda: fired.append(1))
        sched.schedule_at(10.0, lambda: fired.append(10))
        sched.run(until=5.0)
        assert fired == [1]
        assert sched.clock.now == 5.0  # advanced to the horizon
        sched.run()
        assert fired == [1, 10]

    def test_run_until_includes_boundary(self, sched):
        fired = []
        sched.schedule_at(5.0, lambda: fired.append(5))
        sched.run(until=5.0)
        assert fired == [5]

    def test_max_events_bounds_runaway(self, sched):
        def loop():
            sched.schedule_in(1.0, loop)

        sched.schedule_at(0.0, loop)
        processed = sched.run(max_events=25)
        assert processed == 25

    def test_step_returns_false_when_empty(self, sched):
        assert sched.step() is False

    def test_events_processed_counter(self, sched):
        for t in (1.0, 2.0, 3.0):
            sched.schedule_at(t, lambda: None)
        sched.run()
        assert sched.events_processed == 3

    def test_next_event_time(self, sched):
        assert sched.next_event_time() is None
        sched.schedule_at(4.0, lambda: None)
        assert sched.next_event_time() == 4.0

    def test_not_reentrant(self, sched):
        def nested():
            sched.run()

        sched.schedule_at(1.0, nested)
        with pytest.raises(SchedulerError):
            sched.run()


class TestTombstoneCompaction:
    def test_heap_bounded_under_cancel_churn(self, sched):
        # Schedule/cancel churn (the MTA retry-timer pattern) must not
        # accumulate cancelled entries: the heap stays proportional to the
        # live event count, not to the total number of cancellations.
        live = [sched.schedule_at(1e9, lambda: None) for _ in range(10)]
        for round_ in range(200):
            handles = [
                sched.schedule_at(100.0 + round_, lambda: None)
                for _ in range(50)
            ]
            for handle in handles:
                sched.cancel(handle)
        assert sched.pending == len(live)
        assert len(sched._heap) <= sched.pending + sched.COMPACT_MIN_TOMBSTONES

    def test_small_heaps_not_compacted(self, sched):
        # Below the tombstone floor the heap is left alone (no rebuild
        # thrash for tiny schedules).
        handle = sched.schedule_at(5.0, lambda: None)
        sched.cancel(handle)
        assert sched.tombstones == 1

    def test_step_consumes_tombstones(self, sched):
        handles = [sched.schedule_at(float(i + 1), lambda: None) for i in range(5)]
        for handle in handles[:3]:
            sched.cancel(handle)
        assert sched.tombstones == 3
        sched.run()
        assert sched.tombstones == 0
        assert sched.events_processed == 2

    def test_custom_threshold_compacts_earlier(self):
        # A lower constructor threshold keeps the heap tighter under the
        # same churn: tombstones are swept as soon as 4 accumulate.
        sched = EventScheduler(Clock(), compact_min_tombstones=4)
        sched.schedule_at(1e9, lambda: None)
        for round_ in range(100):
            handles = [
                sched.schedule_at(100.0 + round_, lambda: None)
                for _ in range(50)
            ]
            for handle in handles:
                sched.cancel(handle)
            assert sched.heap_size <= sched.pending + 4

    def test_default_threshold_from_class_constant(self, sched):
        assert sched.compact_min_tombstones == EventScheduler.COMPACT_MIN_TOMBSTONES

    def test_threshold_below_one_rejected(self):
        with pytest.raises(SchedulerError):
            EventScheduler(Clock(), compact_min_tombstones=0)
        with pytest.raises(SchedulerError):
            EventScheduler(Clock(), compact_min_tombstones=-5)

    def test_heap_size_counts_live_plus_tombstones(self, sched):
        handles = [sched.schedule_at(float(i + 1), lambda: None) for i in range(5)]
        assert sched.heap_size == 5
        sched.cancel(handles[0])
        # Below the compaction floor the tombstone still occupies a slot.
        assert sched.heap_size == 5
        assert sched.pending == 4

    def test_cancel_correct_across_compaction(self, sched):
        fired = []
        keep = [
            sched.schedule_at(float(i + 1), lambda i=i: fired.append(i))
            for i in range(5)
        ]
        for round_ in range(100):
            handles = [
                sched.schedule_at(50.0 + round_, lambda: fired.append("x"))
                for _ in range(10)
            ]
            for handle in handles:
                assert sched.cancel(handle) is True
        sched.cancel(keep[2])
        sched.run()
        assert fired == [0, 1, 3, 4]
