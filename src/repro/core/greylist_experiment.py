"""Greylisting-vs-malware experiments (paper §V.A, Figures 3 and 4).

Runs a malware family against a greylisted server at a configurable
threshold and collects the raw material of the paper's figures:

* the per-message *delivery delay* sample (Figure 3's CDFs at 5 s and
  300 s thresholds), and
* the full *attempt timeline* — the age of every delivery attempt, marked
  failed or accepted (Figure 4's blue/red scatter at the 21 600 s
  threshold).

It also reproduces the §V.A control: a few unprotected addresses receive
the same campaign without greylisting, proving a single spam task was in
flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.cdf import EmpiricalCDF
from ..botnet.bot import BotAttemptOutcome
from ..botnet.campaign import SpamCampaign, make_recipient_list
from ..botnet.families import KELIHOS, FamilyProfile
from ..sim.rng import RandomStream
from .testbed import Defense, Testbed, TestbedConfig

#: Thresholds the paper sweeps (seconds).
PAPER_THRESHOLDS: Tuple[float, float, float] = (5.0, 300.0, 21600.0)


@dataclass
class AttemptPoint:
    """One dot of Figure 4: an attempt's age and whether it was accepted."""

    age: float                 # seconds since the task's first attempt
    delivered: bool
    task_index: int


@dataclass
class GreylistExperimentResult:
    """Everything one family-vs-threshold run produced."""

    family: str
    threshold: float
    num_messages: int
    delivered: int
    blocked: bool
    delivery_delays: List[float] = field(default_factory=list)
    attempt_points: List[AttemptPoint] = field(default_factory=list)
    campaigns_seen: int = 0
    unprotected_deliveries: int = 0

    def delay_cdf(self) -> EmpiricalCDF:
        """The Figure 3 CDF (only meaningful when anything was delivered)."""
        return EmpiricalCDF.from_samples(self.delivery_delays)

    @property
    def delivery_rate(self) -> float:
        if self.num_messages == 0:
            return 0.0
        return self.delivered / self.num_messages

    def failed_points(self) -> List[AttemptPoint]:
        """Figure 4's blue dots (attempts below the threshold)."""
        return [p for p in self.attempt_points if not p.delivered]

    def delivered_points(self) -> List[AttemptPoint]:
        """Figure 4's red dots (accepted attempts)."""
        return [p for p in self.attempt_points if p.delivered]

    def retransmission_gaps(self) -> List[float]:
        """Delays between consecutive attempts of each task.

        This is the quantity whose distribution shows the paper's three
        Figure 4 peaks (300-600 s, ~5000 s, 80-90 ks): the malware's
        retry-delay modes, independent of where each attempt's *age*
        relative to the greylisting threshold happens to fall.
        """
        gaps: List[float] = []
        by_task: Dict[int, List[float]] = {}
        for point in self.attempt_points:
            by_task.setdefault(point.task_index, []).append(point.age)
        for ages in by_task.values():
            ages.sort()
            gaps.extend(b - a for a, b in zip(ages, ages[1:]))
        return gaps


def run_greylist_experiment(
    family: FamilyProfile,
    threshold: float,
    num_messages: int = 100,
    seed: int = 23,
    horizon: float = 400000.0,
    unprotected_count: int = 2,
    store_backend: str = "memory",
    store_path: Optional[str] = None,
) -> GreylistExperimentResult:
    """Run one family against a greylisted server at one threshold.

    ``store_backend``/``store_path`` select the triplet-store backend of
    the victim's greylist policy (:mod:`repro.greylist.backends`); every
    backend produces the identical result, durable ones survive restarts.
    """
    domain = "victim.example"
    unprotected = {
        f"postmaster{i}@{domain}" for i in range(unprotected_count)
    }
    testbed = Testbed(
        TestbedConfig(
            defense=Defense.GREYLISTING,
            victim_domain=domain,
            greylist_delay=threshold,
            greylist_store_backend=store_backend,
            greylist_store_path=store_path,
            unprotected_recipients=unprotected,
        )
    )
    rng = RandomStream(seed, f"greylist:{family.name}:{threshold}")
    bot = family.build_bot(
        internet=testbed.internet,
        resolver=testbed.resolver,
        scheduler=testbed.scheduler,
        source_address=testbed.allocate_bot_address(),
        rng=rng,
    )
    recipients = make_recipient_list(domain, num_messages) + sorted(unprotected)
    campaign = SpamCampaign(
        sender=f"spam@{family.name.lower().replace('(', '').replace(')', '')}.example",
        recipients=recipients,
    )
    for job in campaign.single_recipient_jobs():
        bot.assign(job)
    testbed.run(horizon=horizon)

    protected_tasks = [
        task for task in bot.tasks if task.recipient not in unprotected
    ]
    delays = [
        task.delivery_delay
        for task in protected_tasks
        if task.delivery_delay is not None
    ]
    points: List[AttemptPoint] = []
    for task_index, task in enumerate(protected_tasks):
        for attempt in task.attempts:
            points.append(
                AttemptPoint(
                    age=attempt.timestamp - task.created_at,
                    delivered=(
                        attempt.outcome is BotAttemptOutcome.DELIVERED
                    ),
                    task_index=task_index,
                )
            )
    delivered = sum(1 for task in protected_tasks if task.delivered)
    return GreylistExperimentResult(
        family=family.name,
        threshold=threshold,
        num_messages=len(protected_tasks),
        delivered=delivered,
        blocked=(delivered == 0),
        delivery_delays=delays,
        attempt_points=points,
        campaigns_seen=len(testbed.campaign_ids_seen()),
        unprotected_deliveries=testbed.spam_delivered_to_unprotected(),
    )


def run_kelihos_threshold_sweep(
    thresholds: Tuple[float, ...] = PAPER_THRESHOLDS,
    num_messages: int = 100,
    seed: int = 23,
    horizon: float = 400000.0,
    store_backend: str = "memory",
) -> List[GreylistExperimentResult]:
    """The paper's three-threshold Kelihos experiment (Figures 3-4)."""
    return [
        run_greylist_experiment(
            KELIHOS,
            threshold,
            num_messages=num_messages,
            seed=seed,
            horizon=horizon,
            store_backend=store_backend,
        )
        for threshold in thresholds
    ]
