"""Pluggable storage backends for the triplet database.

The paper's greylisting numbers depend on triplet state *surviving*: the
university deployment kept its Postgrey BerkeleyDB across the whole
four-month log window, and iRedAPD serves the same decisions for years
from a SQL ``greylisting_tracking`` table.  This module extracts the
storage concern out of :class:`~repro.greylist.store.TripletStore` into a
narrow :class:`TripletBackend` interface so the simulated and (future)
served policy paths share one durable core:

* :class:`MemoryBackend` — the original in-process dict; the default, and
  the behavioural reference for the other two.
* :class:`SQLiteBackend` — a WAL-mode SQLite database with an
  iRedAPD-style tracking schema (triplet key columns, first/last-seen
  timestamps, attempt counter, pass marker) plus an expiry index, for
  durable multi-worker serving.
* :class:`JournalBackend` — an append-only snapshot+log on the
  :mod:`~repro.greylist.persistence` v1 line format, for cheap
  checkpoint/resume of longitudinal campaigns.

Determinism contract: every backend must be *bit-for-bit* equivalent —
identical :class:`~repro.greylist.policy.GreylistEvent` streams, store
sizes and expiry counters for identical input streams.  The rules that
make this hold:

1. The expiry predicate is :func:`entry_is_expired` and nothing else.
   The SQLite backend may use its index to *pre-filter candidates*
   (with a slack margin), but the final decision is always the exact
   float comparison this function performs — SQL inequalities on
   ``REAL`` columns are never trusted to reproduce Python float
   semantics at the boundary.
2. Timestamps round-trip exactly: SQLite ``REAL`` is an IEEE double
   (lossless), and the journal reuses the snapshot format's ``repr()``
   encoding (shortest exact decimal).
3. ``scan()`` order is insertion order (updates keep an entry's
   position; a delete + re-insert moves it to the end), which all three
   backends implement — the dict natively, SQLite via an
   ``AUTOINCREMENT`` rowid, the journal via replay order.
"""

from __future__ import annotations

import io
import os
import sqlite3
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..net.address import IPv4Address
from .store import TripletEntry
from .triplet import Triplet

#: Backend names :func:`create_backend` understands (CLI choices).
BACKEND_NAMES = ("memory", "sqlite", "journal", "shm")

#: Header of a journal (op log) file; the snapshot half of the pair uses
#: the ordinary persistence FORMAT_HEADER.
JOURNAL_HEADER = "# repro-greylist-journal v1"

#: Added to SQL expiry cutoffs so the indexed candidate pre-filter can
#: never *miss* an entry the exact Python predicate would expire (float
#: rounding at the boundary is ulp-scale; one second is beyond generous).
_EXPIRY_SLACK = 1.0


def timestamps_expired(
    passed: bool,
    last_seen: float,
    now: float,
    retry_window: float,
    whitelist_lifetime: float,
) -> bool:
    """The one true expiry predicate on raw fields.

    Split out from :func:`entry_is_expired` so backends that already hold
    ``(passed, last_seen)`` as scalars (the SQLite expiry path) can apply
    the *identical* float comparison without materializing an entry.
    """
    if passed:
        return now - last_seen > whitelist_lifetime
    return now - last_seen > retry_window


def entry_is_expired(
    entry: TripletEntry,
    now: float,
    retry_window: float,
    whitelist_lifetime: float,
) -> bool:
    """The one true expiry predicate (see the determinism contract)."""
    return timestamps_expired(
        entry.passed, entry.last_seen, now, retry_window, whitelist_lifetime
    )


class TripletBackend(ABC):
    """Storage interface behind :class:`~repro.greylist.store.TripletStore`.

    Implementations store :class:`TripletEntry` rows keyed by their
    :class:`Triplet`.  The policy veneer owns the clock, the expiry
    windows and the expiry *counters*; backends own bytes and atomicity.
    """

    #: Registry name (matches :func:`create_backend`).
    name = "abstract"

    @abstractmethod
    def get(self, triplet: Triplet) -> Optional[TripletEntry]:
        """Fetch the entry for a triplet, or ``None``.  No expiry logic."""

    @abstractmethod
    def put(self, entry: TripletEntry) -> None:
        """Insert or update an entry (keyed by ``entry.triplet``)."""

    @abstractmethod
    def delete(self, triplet: Triplet) -> bool:
        """Remove an entry; returns whether it existed."""

    @abstractmethod
    def scan(self) -> Iterator[TripletEntry]:
        """Iterate every entry in insertion order (snapshot semantics:
        mutating the backend while consuming the iterator is allowed)."""

    @abstractmethod
    def expire(
        self, now: float, retry_window: float, whitelist_lifetime: float
    ) -> Tuple[int, int]:
        """Bulk-delete every expired entry.

        Returns ``(unconfirmed, confirmed)`` removal counts — the inputs
        to the store's ``expired_unconfirmed`` / ``expired_confirmed``
        counters.  Must implement exactly :func:`entry_is_expired`.
        """

    @abstractmethod
    def mark_passed(self, triplet: Triplet, now: float) -> bool:
        """Atomically set ``passed=True, passed_at=now`` if the entry
        exists and has not passed yet; returns whether it changed.

        This is the one compound operation the serving path needs to be
        transactional (two workers may race on the same retry).
        """

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries (expired-but-unswept ones included)."""

    def record_attempt(
        self,
        triplet: Triplet,
        now: float,
        retry_window: float,
        whitelist_lifetime: float,
    ) -> Tuple[TripletEntry, Optional[str]]:
        """One delivery attempt as a single compound operation.

        Semantics (exactly :meth:`TripletStore.observe`'s historical
        lookup → expire-if-stale → create-or-update → put sequence, so
        journal op streams and snapshots stay bit-for-bit):

        * a stored entry that :func:`entry_is_expired` is deleted first;
          the second return value names what expired (``"confirmed"`` /
          ``"unconfirmed"`` — the store's expiry-counter input) and the
          attempt then creates a fresh entry;
        * an absent key creates a fresh entry (``attempts=1``);
        * a live entry gets ``attempts += 1`` and ``last_seen = now``.

        Single-process backends inherit this default; backends shared
        across processes (shm) override it to run the whole compound
        under one lock, so concurrent workers never lose an attempt or
        double-count an expiry.
        """
        expired: Optional[str] = None
        entry = self.get(triplet)
        if entry is not None and entry_is_expired(
            entry, now, retry_window, whitelist_lifetime
        ):
            self.delete(triplet)
            expired = "confirmed" if entry.passed else "unconfirmed"
            entry = None
        if entry is None:
            entry = TripletEntry(
                triplet=triplet, first_seen=now, last_seen=now
            )
        else:
            entry.attempts += 1
            entry.last_seen = now
        self.put(entry)
        return entry, expired

    def confirmed_count(self) -> int:
        """Number of entries with ``passed=True`` (no expiry check)."""
        return sum(1 for entry in self.scan() if entry.passed)

    def bulk_load(self, entries: List[TripletEntry]) -> None:
        """Insert many entries at once (snapshot load, benchmarks)."""
        for entry in entries:
            self.put(entry)

    def flush(self) -> None:
        """Make buffered writes durable.  No-op for volatile backends."""

    def close(self) -> None:
        """Flush and release resources.  Idempotent."""
        self.flush()


# ----------------------------------------------------------------------
# In-memory dict (the original TripletStore storage, extracted)
# ----------------------------------------------------------------------
class MemoryBackend(TripletBackend):
    """The process-local dict backend — default, zero behaviour change."""

    name = "memory"

    def __init__(self) -> None:
        self._entries: Dict[Triplet, TripletEntry] = {}

    def get(self, triplet: Triplet) -> Optional[TripletEntry]:
        return self._entries.get(triplet)

    def put(self, entry: TripletEntry) -> None:
        self._entries[entry.triplet] = entry

    def delete(self, triplet: Triplet) -> bool:
        return self._entries.pop(triplet, None) is not None

    def scan(self) -> Iterator[TripletEntry]:
        return iter(list(self._entries.values()))

    def expire(
        self, now: float, retry_window: float, whitelist_lifetime: float
    ) -> Tuple[int, int]:
        stale = [
            triplet
            for triplet, entry in self._entries.items()
            if entry_is_expired(entry, now, retry_window, whitelist_lifetime)
        ]
        unconfirmed = confirmed = 0
        for triplet in stale:
            if self._entries.pop(triplet).passed:
                confirmed += 1
            else:
                unconfirmed += 1
        return unconfirmed, confirmed

    def mark_passed(self, triplet: Triplet, now: float) -> bool:
        entry = self._entries.get(triplet)
        if entry is None or entry.passed:
            return False
        entry.passed = True
        entry.passed_at = now
        return True

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# SQLite (WAL) — the iRedAPD greylisting_tracking shape
# ----------------------------------------------------------------------
_SCHEMA = """
CREATE TABLE IF NOT EXISTS greylisting_tracking (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    client      INTEGER NOT NULL,
    sender      TEXT    NOT NULL,
    recipient   TEXT    NOT NULL,
    first_seen  REAL    NOT NULL,
    last_seen   REAL    NOT NULL,
    attempts    INTEGER NOT NULL,
    passed      INTEGER NOT NULL DEFAULT 0,
    passed_at   REAL,
    UNIQUE (client, sender, recipient)
);
CREATE INDEX IF NOT EXISTS ix_greylisting_expiry
    ON greylisting_tracking (passed, last_seen);
"""

_COLUMNS = (
    "client, sender, recipient, first_seen, last_seen, "
    "attempts, passed, passed_at"
)

# Statement texts are module constants so every execute() passes the
# *identical* string object: sqlite3's per-connection statement cache is
# keyed by the SQL text, and a constant guarantees a hit — the prepared
# statement (parse + plan) is reused instead of recompiled per call.
# This is the difference between ~100k and ~150k lookups/sec when the
# policy daemon serves from SQLite (see docs/PERFORMANCE.md).
_GET_SQL = (
    "SELECT first_seen, last_seen, attempts, passed, passed_at"
    " FROM greylisting_tracking"
    " WHERE client=? AND sender=? AND recipient=?"
)
_UPSERT_SQL = (
    "INSERT INTO greylisting_tracking"
    f" ({_COLUMNS}) VALUES (?,?,?,?,?,?,?,?)"
    " ON CONFLICT(client, sender, recipient) DO UPDATE SET"
    " first_seen=excluded.first_seen, last_seen=excluded.last_seen,"
    " attempts=excluded.attempts, passed=excluded.passed,"
    " passed_at=excluded.passed_at"
)
_DELETE_SQL = (
    "DELETE FROM greylisting_tracking"
    " WHERE client=? AND sender=? AND recipient=?"
)
_SCAN_SQL = f"SELECT {_COLUMNS} FROM greylisting_tracking ORDER BY id"
_EXPIRY_CANDIDATES_SQL = (
    "SELECT id, passed, last_seen FROM greylisting_tracking"
    " WHERE (passed=0 AND last_seen <= ?)"
    "    OR (passed=1 AND last_seen <= ?)"
)
_MARK_PASSED_SQL = (
    "UPDATE greylisting_tracking SET passed=1, passed_at=?"
    " WHERE client=? AND sender=? AND recipient=? AND passed=0"
)


class SQLiteBackend(TripletBackend):
    """Triplet rows in a WAL-mode SQLite database.

    The schema follows iRedAPD's ``greylisting_tracking`` table: the
    triplet key columns, first/last-seen timestamps, an attempt counter
    and the pass marker, with a ``(passed, last_seen)`` index so expiry
    sweeps are range scans rather than full-table scans.  WAL mode lets
    a future policy server read from several workers while one writer
    appends — the concurrency model Postfix policy daemons need.

    Writes are batched: the connection stays inside an explicit
    transaction that is committed every ``commit_every`` mutations (and
    on :meth:`flush`/:meth:`close`).  Reads on the same connection see
    the uncommitted batch, so batching is invisible to the simulation.

    ``path=None`` opens a private in-memory database — handy for
    equivalence tests and worker processes that only need the schema,
    not durability.
    """

    name = "sqlite"

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        commit_every: int = 1024,
    ) -> None:
        if commit_every < 1:
            raise ValueError("commit_every must be >= 1")
        self.path = str(path) if path is not None else None
        self.commit_every = commit_every
        # cached_statements: every statement here is a module constant,
        # so a modest cache holds the whole working set and each execute
        # reuses its prepared statement (the default 128 already would;
        # being explicit documents that we rely on it).
        self._conn = sqlite3.connect(
            self.path or ":memory:", cached_statements=256
        )
        self._conn.isolation_level = None  # explicit transaction control
        if self.path is not None:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            # Serving: a sibling process (checkpointer, stats reader) may
            # briefly hold the lock; back off instead of failing the
            # policy decision with SQLITE_BUSY.
            self._conn.execute("PRAGMA busy_timeout=5000")
        self._conn.execute("PRAGMA temp_store=MEMORY")
        # The expiry index keys on last_seen, so its inserts/deletes land
        # in random pages; the 2 MiB default cache thrashes at
        # million-entry scale (bulk loads and sweeps go I/O bound).
        # 64 MiB keeps the working set resident.
        self._conn.execute("PRAGMA cache_size=-65536")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._pending = 0
        self._closed = False

    # -- batching ------------------------------------------------------
    def _mutated(self, count: int = 1) -> None:
        self._pending += count
        if self._pending >= self.commit_every:
            self.flush()

    def flush(self) -> None:
        if self._pending or self._conn.in_transaction:
            # Committing on the serving event loop is deliberate: sqlite3
            # connections are thread-bound by default, and a batched WAL
            # commit under synchronous=NORMAL is sub-millisecond — the
            # same single-writer trade iRedAPD makes.
            self._conn.commit()  # repro: noqa ASY001 - batched WAL commit is sub-ms; sqlite3 connections are thread-bound
        self._pending = 0

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._conn.close()
        self._closed = True

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # Best-effort teardown: interpreter shutdown may have torn down
        # sqlite3 internals already, and a destructor must never raise.
        try:
            self.close()
        except Exception:  # repro: noqa EXC001 - destructors must not raise
            pass

    # -- row mapping ---------------------------------------------------
    @staticmethod
    def _entry_from_row(row: tuple) -> TripletEntry:
        client, sender, recipient, first, last, attempts, passed, passed_at = row
        return TripletEntry(
            triplet=Triplet(IPv4Address(client), sender, recipient),
            first_seen=first,
            last_seen=last,
            attempts=attempts,
            passed=bool(passed),
            passed_at=passed_at,
        )

    @staticmethod
    def _row_from_entry(entry: TripletEntry) -> tuple:
        triplet = entry.triplet
        return (
            triplet.client.value,
            triplet.sender,
            triplet.recipient,
            entry.first_seen,
            entry.last_seen,
            entry.attempts,
            1 if entry.passed else 0,
            entry.passed_at,
        )

    # -- interface -----------------------------------------------------
    def get(self, triplet: Triplet) -> Optional[TripletEntry]:
        # Hot path of every RCPT decision: select only the state columns
        # and reuse the caller's (already canonical) triplet — rebuilding
        # one re-validates both addresses and dominates the lookup cost.
        row = self._conn.execute(
            _GET_SQL,
            (triplet.client.value, triplet.sender, triplet.recipient),
        ).fetchone()
        if row is None:
            return None
        return TripletEntry(
            triplet=triplet,
            first_seen=row[0],
            last_seen=row[1],
            attempts=row[2],
            passed=bool(row[3]),
            passed_at=row[4],
        )

    def put(self, entry: TripletEntry) -> None:
        self._conn.execute(_UPSERT_SQL, self._row_from_entry(entry))
        self._mutated()

    def bulk_load(self, entries: List[TripletEntry]) -> None:
        self._conn.executemany(
            _UPSERT_SQL,
            [self._row_from_entry(entry) for entry in entries],
        )
        self._mutated(len(entries))

    def delete(self, triplet: Triplet) -> bool:
        cursor = self._conn.execute(
            _DELETE_SQL,
            (triplet.client.value, triplet.sender, triplet.recipient),
        )
        if cursor.rowcount > 0:
            self._mutated()
            return True
        return False

    def scan(self) -> Iterator[TripletEntry]:
        # A dedicated cursor with fetchmany keeps memory flat at millions
        # of rows; ORDER BY id is insertion order (AUTOINCREMENT ids are
        # never reused, so delete + re-insert moves to the end, exactly
        # like a dict).
        cursor = self._conn.execute(_SCAN_SQL)
        while True:
            rows = cursor.fetchmany(4096)
            if not rows:
                return
            for row in rows:
                yield self._entry_from_row(row)

    def expire(
        self, now: float, retry_window: float, whitelist_lifetime: float
    ) -> Tuple[int, int]:
        # Indexed candidate pre-filter with slack, exact predicate in
        # Python (determinism contract rule 1), then a batched delete.
        # Only (id, passed, last_seen) leave SQLite: the predicate needs
        # nothing else, and materializing entries (with their address
        # re-validation) would dominate a million-row sweep.
        candidates = self._conn.execute(
            _EXPIRY_CANDIDATES_SQL,
            (
                now - retry_window + _EXPIRY_SLACK,
                now - whitelist_lifetime + _EXPIRY_SLACK,
            ),
        ).fetchall()
        doomed: List[int] = []
        unconfirmed = confirmed = 0
        for rowid, passed, last_seen in candidates:
            if timestamps_expired(
                passed, last_seen, now, retry_window, whitelist_lifetime
            ):
                doomed.append(rowid)
                if passed:
                    confirmed += 1
                else:
                    unconfirmed += 1
        # Chunked IN-list deletes: ~1000x fewer statements than a
        # one-row-per-execute plan at million-entry sweeps.
        for start in range(0, len(doomed), 500):
            chunk = doomed[start:start + 500]
            self._conn.execute(
                "DELETE FROM greylisting_tracking WHERE id IN"
                f" ({','.join('?' * len(chunk))})",
                chunk,
            )
        if doomed:
            self._mutated(len(doomed))
        return unconfirmed, confirmed

    def mark_passed(self, triplet: Triplet, now: float) -> bool:
        cursor = self._conn.execute(
            _MARK_PASSED_SQL,
            (now, triplet.client.value, triplet.sender, triplet.recipient),
        )
        if cursor.rowcount > 0:
            self._mutated()
            return True
        return False

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM greylisting_tracking"
        ).fetchone()
        return int(row[0])

    def confirmed_count(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM greylisting_tracking WHERE passed=1"
        ).fetchone()
        return int(row[0])


# ----------------------------------------------------------------------
# Append-only journal (snapshot + op log)
# ----------------------------------------------------------------------
class JournalBackend(TripletBackend):
    """Dict state with an append-only recovery log.

    The durable pair is ``<path>`` (a full v1 snapshot, written by
    :meth:`checkpoint`) and ``<path>.journal`` (one line per mutation
    since that snapshot).  Upserts reuse the persistence module's v1
    entry-line format verbatim; deletions append a ``-``-prefixed
    tombstone.  Recovery loads the snapshot, then replays the journal in
    order — making restart cost proportional to the churn since the last
    checkpoint, not to history.

    Crash semantics: a torn final journal line (the write the crash
    interrupted) is quarantined to ``<path>.journal.corrupt`` and
    dropped — everything durable before it is recovered.  A malformed
    line *followed by more data* is real corruption: the journal is
    quarantined and :class:`~repro.greylist.persistence.PersistenceError`
    names the line.

    ``path=None`` keeps the journal in an in-memory buffer: identical
    code path and op stream, no filesystem — the configuration the
    equivalence suite uses.
    """

    name = "journal"

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 or None")
        self.path = Path(path) if path is not None else None
        self.checkpoint_every = checkpoint_every
        self._entries: Dict[Triplet, TripletEntry] = {}
        #: mutations appended since the last checkpoint
        self.journal_ops = 0
        #: whether recovery dropped a torn final journal line
        self.recovered_torn_tail = False
        if self.path is not None:
            self._recover()
            self._journal = open(self._journal_path, "a", encoding="utf-8")
        else:
            self._journal = io.StringIO()
            self._journal.write(JOURNAL_HEADER + "\n")

    # -- paths ---------------------------------------------------------
    @property
    def _journal_path(self) -> Path:
        assert self.path is not None
        return self.path.with_name(self.path.name + ".journal")

    # -- recovery ------------------------------------------------------
    def _recover(self) -> None:
        from .persistence import (
            FORMAT_HEADER,
            PersistenceError,
            parse_entry_line,
        )

        assert self.path is not None
        if self.path.exists():
            text = self.path.read_text(encoding="utf-8")
            lines = text.splitlines()
            if not lines or lines[0].strip() != FORMAT_HEADER:
                raise PersistenceError(
                    f"{self.path}: missing or unknown snapshot header"
                )
            for number, line in enumerate(lines[1:], start=2):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                entry = parse_entry_line(line, number)
                self._entries[entry.triplet] = entry

        journal_path = self._journal_path
        if not journal_path.exists():
            # Fresh journal next to an existing (or absent) snapshot.
            with open(journal_path, "w", encoding="utf-8") as handle:
                handle.write(JOURNAL_HEADER + "\n")
            return
        text = journal_path.read_text(encoding="utf-8")
        torn_tail: Optional[str] = None
        if text and not text.endswith("\n"):
            # The crash interrupted the final append; the partial record
            # never became durable.  Drop and quarantine it.
            text, _, torn_tail = text.rpartition("\n")
        self._replay_journal(text)
        if torn_tail is not None:
            self.recovered_torn_tail = True
            quarantine = journal_path.with_name(
                journal_path.name + ".corrupt"
            )
            quarantine.write_text(torn_tail, encoding="utf-8")
            journal_path.write_text(
                text + ("\n" if text else ""), encoding="utf-8"
            )

    def _replay_journal(self, text: str) -> None:
        from .persistence import PersistenceError, parse_entry_line

        lines = text.splitlines()
        if not lines or lines[0].strip() != JOURNAL_HEADER:
            self._quarantine_journal()
            raise PersistenceError(
                f"{self._journal_path}: missing or unknown journal header"
            )
        for number, line in enumerate(lines[1:], start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("- "):
                parts = line[2:].split()
                if len(parts) != 3:
                    self._quarantine_journal()
                    raise PersistenceError(
                        f"malformed journal tombstone line {number}: {line!r}"
                    )
                try:
                    triplet = Triplet(
                        IPv4Address.parse(parts[0]), parts[1], parts[2]
                    )
                except ValueError:
                    self._quarantine_journal()
                    raise PersistenceError(
                        f"malformed journal tombstone line {number}: {line!r}"
                    ) from None
                self._entries.pop(triplet, None)
                self.journal_ops += 1
                continue
            try:
                entry = parse_entry_line(line, number)
            except PersistenceError:
                self._quarantine_journal()
                raise PersistenceError(
                    f"malformed journal line {number}: {line!r}"
                ) from None
            self._entries[entry.triplet] = entry
            self.journal_ops += 1

    def _quarantine_journal(self) -> None:
        """Copy a corrupt journal aside so the evidence survives."""
        if self.path is None:  # pragma: no cover - in-memory never corrupt
            return
        journal_path = self._journal_path
        if journal_path.exists():
            quarantine = journal_path.with_name(
                journal_path.name + ".corrupt"
            )
            os.replace(journal_path, quarantine)

    # -- journalling ---------------------------------------------------
    def _append(self, line: str) -> None:
        self._journal.write(line + "\n")
        self.journal_ops += 1
        if (
            self.checkpoint_every is not None
            and self.journal_ops >= self.checkpoint_every
        ):
            self.checkpoint()

    def checkpoint(self) -> int:
        """Write a full snapshot and truncate the journal.

        Returns the number of entries snapshotted.  In-memory journals
        just reset their buffer (same op-count semantics).
        """
        from .persistence import FORMAT_HEADER, format_entry_line

        lines = [FORMAT_HEADER]
        lines.extend(format_entry_line(e) for e in self._entries.values())
        snapshot = "\n".join(lines) + "\n"
        if self.path is not None:
            tmp = self.path.with_name(self.path.name + ".tmp")
            # Checkpointing from the serving loop is deliberate: it only
            # triggers every checkpoint_every mutations (None by default
            # when serving) and the snapshot write is bounded by the
            # store size the operator chose to journal.
            tmp.write_text(snapshot, encoding="utf-8")  # repro: noqa ASY001 - rare bounded checkpoint; serving disables checkpoint_every
            os.replace(tmp, self.path)
            self._journal.close()
            self._journal = open(self._journal_path, "w", encoding="utf-8")  # repro: noqa ASY001 - rare bounded checkpoint; serving disables checkpoint_every
        else:
            self._journal = io.StringIO()
        self._journal.write(JOURNAL_HEADER + "\n")
        # Make the fresh header durable at once: a crash between here and
        # the next flush must not leave a header-less journal behind.
        self.flush()
        self.journal_ops = 0
        return len(self._entries)

    # -- interface -----------------------------------------------------
    def get(self, triplet: Triplet) -> Optional[TripletEntry]:
        return self._entries.get(triplet)

    def put(self, entry: TripletEntry) -> None:
        from .persistence import format_entry_line

        self._entries[entry.triplet] = entry
        self._append(format_entry_line(entry))

    def delete(self, triplet: Triplet) -> bool:
        if self._entries.pop(triplet, None) is None:
            return False
        self._append(
            f"- {triplet.client} {triplet.sender} {triplet.recipient}"
        )
        return True

    def scan(self) -> Iterator[TripletEntry]:
        return iter(list(self._entries.values()))

    def expire(
        self, now: float, retry_window: float, whitelist_lifetime: float
    ) -> Tuple[int, int]:
        stale = [
            triplet
            for triplet, entry in self._entries.items()
            if entry_is_expired(entry, now, retry_window, whitelist_lifetime)
        ]
        unconfirmed = confirmed = 0
        for triplet in stale:
            entry = self._entries.pop(triplet)
            self._append(
                f"- {triplet.client} {triplet.sender} {triplet.recipient}"
            )
            if entry.passed:
                confirmed += 1
            else:
                unconfirmed += 1
        return unconfirmed, confirmed

    def mark_passed(self, triplet: Triplet, now: float) -> bool:
        from .persistence import format_entry_line

        entry = self._entries.get(triplet)
        if entry is None or entry.passed:
            return False
        entry.passed = True
        entry.passed_at = now
        self._append(format_entry_line(entry))
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def flush(self) -> None:
        if self.path is not None:
            self._journal.flush()

    def close(self) -> None:
        self.flush()
        if self.path is not None and not self._journal.closed:
            self._journal.close()


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
#: ``commit_every`` the serving daemon uses for SQLite.  Simulation runs
#: favour huge batches (1024 — throughput is everything, the process owns
#: the data).  A policy daemon answers *live* MTAs: a smaller batch bounds
#: how many acknowledged decisions a crash can lose to one WAL commit
#: (~0.1 ms under WAL+NORMAL, so the throughput cost is noise), and the
#: server's periodic flush loop caps the loss window in time as well.
SERVING_COMMIT_EVERY = 128


def create_backend(
    name: str,
    path: Union[str, Path, None] = None,
    commit_every: Optional[int] = None,
) -> TripletBackend:
    """Build a backend by registry name (``memory``/``sqlite``/``journal``).

    ``path`` is the on-disk location for the durable backends (ignored by
    ``memory``; ``None`` means volatile operation for all of them — for
    ``shm``, a private segment destroyed on close).  ``commit_every``
    overrides the SQLite write-batch size (ignored by the other
    backends); the serving CLI passes :data:`SERVING_COMMIT_EVERY`.
    """
    if name == "memory":
        return MemoryBackend()
    if name == "sqlite":
        if commit_every is not None:
            return SQLiteBackend(path, commit_every=commit_every)
        return SQLiteBackend(path)
    if name == "journal":
        return JournalBackend(path)
    if name == "shm":
        from .shm import SharedMemoryBackend

        return SharedMemoryBackend(path)
    raise ValueError(
        f"unknown triplet-store backend {name!r}; expected one of "
        + ", ".join(BACKEND_NAMES)
    )
