"""The content filter as a post-acceptance SMTP policy.

Runs at the DATA stage (the server has already paid for the connection,
the envelope negotiation and the message bytes) — which is exactly the
cost asymmetry the paper's pre- vs post-acceptance taxonomy is about, and
what the filter-comparison experiment quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..net.address import IPv4Address
from ..smtp.message import Envelope, Message
from ..smtp.replies import Reply
from ..smtp.server import ConnectionPolicy, PolicyDecision
from .bayes import NaiveBayesFilter


@dataclass
class FilterEvent:
    """One post-acceptance classification."""

    client: IPv4Address
    spam_probability: float
    rejected: bool
    message_bytes: int


class ContentFilterPolicy(ConnectionPolicy):
    """Rejects messages the Bayes filter classifies as spam, at DATA time."""

    def __init__(self, classifier: NaiveBayesFilter) -> None:
        if not classifier.is_trained:
            raise ValueError("classifier must be trained before deployment")
        self.classifier = classifier
        self.events: List[FilterEvent] = []
        self.rejections = 0
        #: Bytes accepted onto the wire before the verdict — the
        #: post-acceptance bandwidth cost.
        self.bytes_received = 0

    def on_message(
        self, client: IPv4Address, envelope: Envelope, message: Message
    ) -> PolicyDecision:
        text = f"{message.subject} {message.body}"
        probability = self.classifier.spam_probability(text)
        rejected = probability >= self.classifier.threshold
        self.bytes_received += message.size
        self.events.append(
            FilterEvent(
                client=client,
                spam_probability=probability,
                rejected=rejected,
                message_bytes=message.size,
            )
        )
        if rejected:
            self.rejections += 1
            return PolicyDecision.reject(
                Reply(554, "5.7.1 message content rejected as spam")
            )
        return PolicyDecision.ok()
