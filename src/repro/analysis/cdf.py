"""Empirical cumulative distribution functions.

The paper's Figures 3 and 5 are delay CDFs; this module provides the small
amount of statistics machinery needed to build, evaluate, compare and
serialise them without external dependencies.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical CDF over a finite sample."""

    values: Tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "EmpiricalCDF":
        values = tuple(sorted(float(s) for s in samples))
        if not values:
            raise ValueError("cannot build a CDF from an empty sample")
        return cls(values)

    @property
    def n(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """F(x) = P(X <= x)."""
        return bisect.bisect_right(self.values, x) / self.n

    def quantile(self, q: float) -> float:
        """Inverse CDF: the smallest value v with F(v) >= q."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile level must lie in (0, 1]")
        index = max(0, min(self.n - 1, int(-(-q * self.n // 1)) - 1))
        return self.values[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def min(self) -> float:
        return self.values[0]

    @property
    def max(self) -> float:
        return self.values[-1]

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    def steps(self) -> List[Tuple[float, float]]:
        """The (x, F(x)) step points — one per distinct sample value."""
        points: List[Tuple[float, float]] = []
        for index, value in enumerate(self.values):
            if index + 1 < self.n and self.values[index + 1] == value:
                continue
            points.append((value, (index + 1) / self.n))
        return points

    def series(self, xs: Sequence[float]) -> List[Tuple[float, float]]:
        """Evaluate the CDF on a fixed grid (for figure regeneration)."""
        return [(x, self.at(x)) for x in xs]


def ks_distance(a: EmpiricalCDF, b: EmpiricalCDF) -> float:
    """Kolmogorov-Smirnov distance: sup_x |F_a(x) - F_b(x)|.

    The paper argues Figures 3a and 3b are "similar", i.e. Kelihos ignores
    the threshold change; KS distance makes that claim quantitative.
    """
    xs = sorted(set(a.values) | set(b.values))
    return max(abs(a.at(x) - b.at(x)) for x in xs)


def ascii_cdf(
    cdf: EmpiricalCDF,
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
) -> str:
    """Render a CDF as an ASCII plot (used by benches to 'draw' figures)."""
    if width < 10 or height < 4:
        raise ValueError("plot too small")
    lo, hi = cdf.min, cdf.max
    span = (hi - lo) or 1.0
    rows: List[str] = []
    for row in range(height, 0, -1):
        level = row / height
        line = []
        for col in range(width):
            x = lo + span * col / (width - 1)
            line.append("#" if cdf.at(x) >= level else " ")
        rows.append(f"{level:4.2f} |" + "".join(line))
    axis = "     +" + "-" * width
    labels = f"      {lo:<12.1f}{'':<{max(0, width - 24)}}{hi:>12.1f}  ({x_label})"
    return "\n".join(rows + [axis, labels])
