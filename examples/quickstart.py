#!/usr/bin/env python3
"""Quickstart: a greylisted mail server, a benign sender, and two spam bots.

Builds the smallest interesting scenario on the simulator:

* a victim domain protected by greylisting (Postgrey defaults: 300 s);
* a well-behaved MTA (postfix retry schedule) that delivers after one
  deferral;
* a fire-and-forget bot (Cutwail-style) that is blocked outright;
* a retrying bot (Kelihos-style) that defeats greylisting.

Run:  python examples/quickstart.py
"""

from repro.botnet.families import CUTWAIL, KELIHOS
from repro.core.testbed import Defense, Testbed, TestbedConfig
from repro.dns.resolver import StubResolver
from repro.mta.profiles import PROFILES
from repro.mta.queue import QueueManager
from repro.net.address import pool_for
from repro.sim.rng import RandomStream
from repro.smtp.client import SMTPClient
from repro.smtp.message import Message


def main() -> None:
    # --- the defended server -------------------------------------------
    testbed = Testbed(
        TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=300.0)
    )
    print(f"victim domain : {testbed.config.victim_domain}")
    print(f"defence       : greylisting, threshold {testbed.greylist.delay:g}s")

    # --- a benign sender running postfix -------------------------------
    sender_pool = pool_for("203.0.113.0/24")
    client = SMTPClient(
        internet=testbed.internet,
        resolver=StubResolver(testbed.zones, clock=testbed.clock),
        source_address=sender_pool.allocate(),
        helo_name="mail.company.example",
    )
    queue = QueueManager(testbed.scheduler, client, PROFILES["postfix"].schedule)
    queue.submit(
        Message(
            sender="alice@company.example",
            recipients=["bob@victim.example"],
            subject="quarterly report",
        )
    )

    # --- two bots with the paper's family behaviours -------------------
    rng = RandomStream(7, "quickstart")
    cutwail = CUTWAIL.build_bot(
        internet=testbed.internet,
        resolver=testbed.resolver,
        scheduler=testbed.scheduler,
        source_address=testbed.allocate_bot_address(),
        rng=rng.split("cutwail"),
    )
    kelihos = KELIHOS.build_bot(
        internet=testbed.internet,
        resolver=testbed.resolver,
        scheduler=testbed.scheduler,
        source_address=testbed.allocate_bot_address(),
        rng=rng.split("kelihos"),
    )
    spam = Message(
        sender="spam@botnet.example",
        recipients=["bob@victim.example"],
        subject="You won!!!",
    )
    cutwail.assign(spam)
    kelihos.assign(
        Message(
            sender="spam2@botnet.example",
            recipients=["bob@victim.example"],
            subject="You won again!!!",
        )
    )

    # --- run a simulated day --------------------------------------------
    testbed.run(horizon=86400.0)

    # --- outcomes ---------------------------------------------------------
    benign = queue.entries[0]
    print("\nbenign mail (postfix):")
    print(f"  state={benign.state.value}, attempts={benign.attempt_count}, "
          f"delay={benign.delivery_delay:.0f}s")

    print("cutwail bot (fire-and-forget):")
    task = cutwail.tasks[0]
    print(f"  delivered={task.delivered}, attempts={task.attempt_count} "
          f"(gave up after the 450 greylisting reply)")

    print("kelihos bot (retries >= 300s):")
    task = kelihos.tasks[0]
    print(f"  delivered={task.delivered}, attempts={task.attempt_count}, "
          f"delay={task.delivery_delay:.0f}s")

    print("\nserver log:")
    for record in testbed.server.log:
        status = "ACCEPT" if record.accepted else f"DEFER({record.reply_code})"
        print(f"  t={record.timestamp:>8.1f}s  {record.sender:<24} "
              f"-> {record.recipient:<22} {status}")

    accepted = testbed.server.stats.messages_accepted
    print(f"\nmessages accepted: {accepted} "
          "(the benign one and the Kelihos spam; Cutwail was blocked)")


if __name__ == "__main__":
    main()
