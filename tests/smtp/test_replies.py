"""Unit tests for the canned SMTP reply helpers."""

from repro.smtp import replies


class TestReplyHelpers:
    def test_ready_banner(self):
        reply = replies.ready("smtp.victim.example")
        assert reply.code == 220
        assert "smtp.victim.example" in reply.text
        assert reply.is_positive

    def test_ok(self):
        assert replies.ok().code == 250
        assert replies.ok("custom").text == "custom"

    def test_closing(self):
        reply = replies.closing("smtp.victim.example")
        assert reply.code == 221
        assert reply.is_positive

    def test_start_mail_input(self):
        reply = replies.start_mail_input()
        assert reply.code == 354
        assert reply.is_positive  # 3yz is intermediate-positive

    def test_greylisted_mentions_retry(self):
        reply = replies.greylisted(123.7)
        assert reply.code == 450
        assert "123" in reply.text
        assert reply.is_transient_failure

    def test_bad_sequence(self):
        reply = replies.bad_sequence("MAIL FROM")
        assert reply.code == 503
        assert "MAIL FROM" in reply.text
        assert reply.is_permanent_failure

    def test_mailbox_unavailable(self):
        reply = replies.mailbox_unavailable("ghost@x.example")
        assert reply.code == 550
        assert "ghost@x.example" in reply.text

    def test_str_rendering(self):
        assert str(replies.ok("fine")) == "250 fine"
        assert str(replies.Reply(451)) == "451"
