"""Synthetic mail corpus for training/evaluating the content filter.

Seeded generators producing spam and ham texts with realistic vocabulary
overlap: spam recycles a small set of pitch templates with noisy variation
(the mass-mailer reality that makes Bayesian filtering work), ham draws
from workplace templates with wider topical spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim.rng import RandomStream

_SPAM_TEMPLATES = (
    "win a free {prize} now click here {url}",
    "cheap {drug} online no prescription best price {url}",
    "you have been selected for a {prize} claim immediately {url}",
    "make money fast from home earn {amount} per week {url}",
    "hot singles in your area meet tonight {url}",
    "limited offer luxury {prize} replica watches {url}",
    "your account needs verification login here {url} urgent",
)

_HAM_TEMPLATES = (
    "hi {name} attached the {doc} for review before the {meeting} meeting",
    "reminder the {meeting} meeting moved to {time} see agenda",
    "thanks {name} the {doc} looks good minor comments inline",
    "can you send the {doc} numbers for q{quarter} by {time}",
    "lunch {time}? also need your input on the {doc}",
    "build failed on branch {name} see log details attached",
    "please approve the {doc} request in the portal when you can",
)

_PRIZES = ("iphone", "vacation", "gift card", "laptop", "cruise")
_DRUGS = ("meds", "pills", "supplements")
_AMOUNTS = ("$500", "$2000", "$9999")
_URLS = ("http://offer.invalid", "http://deal.invalid", "http://claim.invalid")
_NAMES = ("ana", "bob", "chen", "dana", "eve")
_DOCS = ("report", "budget", "slides", "spec", "forecast")
_MEETINGS = ("standup", "review", "planning", "board")
_TIMES = ("10am", "noon", "3pm", "friday")


def generate_spam(rng: RandomStream, count: int) -> List[str]:
    """``count`` spam texts with seeded template variation."""
    texts = []
    for _ in range(count):
        template = rng.choice(_SPAM_TEMPLATES)
        texts.append(
            template.format(
                prize=rng.choice(_PRIZES),
                drug=rng.choice(_DRUGS),
                amount=rng.choice(_AMOUNTS),
                url=rng.choice(_URLS),
            )
        )
    return texts


def generate_ham(rng: RandomStream, count: int) -> List[str]:
    """``count`` ham texts with seeded template variation."""
    texts = []
    for _ in range(count):
        template = rng.choice(_HAM_TEMPLATES)
        texts.append(
            template.format(
                name=rng.choice(_NAMES),
                doc=rng.choice(_DOCS),
                meeting=rng.choice(_MEETINGS),
                time=rng.choice(_TIMES),
                quarter=rng.randint(1, 4),
            )
        )
    return texts


@dataclass
class Corpus:
    """A labelled train/test split."""

    train_spam: List[str]
    train_ham: List[str]
    test_spam: List[str]
    test_ham: List[str]


def build_corpus(
    seed: int,
    train_per_class: int = 200,
    test_per_class: int = 100,
) -> Corpus:
    """Seeded corpus with disjoint train/test streams."""
    rng = RandomStream(seed, "corpus")
    return Corpus(
        train_spam=generate_spam(rng.split("train-spam"), train_per_class),
        train_ham=generate_ham(rng.split("train-ham"), train_per_class),
        test_spam=generate_spam(rng.split("test-spam"), test_per_class),
        test_ham=generate_ham(rng.split("test-ham"), test_per_class),
    )


def evaluate(filter_, corpus: Corpus) -> Tuple[float, float]:
    """(spam recall, ham false-positive rate) of a trained filter."""
    caught = sum(1 for text in corpus.test_spam if filter_.is_spam(text))
    false_positives = sum(
        1 for text in corpus.test_ham if filter_.is_spam(text)
    )
    return (
        caught / len(corpus.test_spam) if corpus.test_spam else 0.0,
        false_positives / len(corpus.test_ham) if corpus.test_ham else 0.0,
    )
