"""Nolisting's impact on legitimate mail (paper §II, the criticisms).

Nolisting's selling point is that it "should not affect the delivery of
benign emails, and it should not introduce any delay" — RFC-compliant
senders just fall through to the secondary MX.  The criticism is that "it
is possible (even though extremely rare) that this technique can prevent
some legitimate email client (especially small programs used to send
automated notifications) from delivering legitimate messages".

This experiment measures both claims: a population of benign senders —
mostly full MTAs, plus a configurable fraction of primary-only notifier
scripts — delivers through a nolisted domain, and we record delivery
rates and added delay per sender class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..botnet.behavior import MXBehavior
from ..botnet.bot import SpamBot
from ..botnet.retry import FireAndForget
from ..mta.profiles import PROFILES
from ..mta.queue import QueueEntryState, QueueManager
from ..net.address import AddressPool, IPv4Network
from ..sim.rng import RandomStream
from ..smtp.client import SMTPClient
from ..smtp.message import Message
from .testbed import Defense, Testbed, TestbedConfig


@dataclass
class SenderClassOutcome:
    """Delivery outcome of one benign sender class."""

    name: str
    messages: int
    delivered: int
    lost: int
    delays: List[float] = field(default_factory=list)

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.messages if self.messages else 0.0

    @property
    def max_delay(self) -> float:
        return max(self.delays) if self.delays else 0.0


@dataclass
class NolistingImpactResult:
    """Per-class outcomes under a nolisted vs plain domain."""

    outcomes: Dict[str, SenderClassOutcome]

    @property
    def compliant_loss(self) -> int:
        return sum(
            o.lost for name, o in self.outcomes.items() if name != "notifier"
        )

    @property
    def notifier_outcome(self) -> SenderClassOutcome:
        return self.outcomes["notifier"]


def run_nolisting_impact(
    messages_per_mta: int = 10,
    notifier_messages: int = 10,
    seed: int = 13,
    defense: Defense = Defense.NOLISTING,
    horizon: float = 86400.0,
) -> NolistingImpactResult:
    """Deliver benign traffic through a (no)listed domain and tally it.

    Sender classes:

    * one class per Table IV MTA profile — fully compliant clients that
      walk the MX list and retry;
    * ``notifier`` — a primary-only, fire-and-forget script (modelled with
      the bot engine, because that *is* the delivery logic such scripts
      share with naive bots; the content is legitimate).
    """
    testbed = Testbed(TestbedConfig(defense=defense))
    pool = AddressPool(IPv4Network.parse("203.0.113.0/24"))
    outcomes: Dict[str, SenderClassOutcome] = {}

    # Compliant MTA senders.
    for mta_name, profile in sorted(PROFILES.items()):
        client = SMTPClient(
            internet=testbed.internet,
            resolver=testbed.resolver,
            source_address=pool.allocate(),
            helo_name=f"mail.{mta_name}.example",
        )
        queue = QueueManager(testbed.scheduler, client, profile.schedule)
        for index in range(messages_per_mta):
            queue.submit(
                Message(
                    sender=f"user{index}@{mta_name}.example",
                    recipients=[f"user{index}@victim.example"],
                )
            )
        outcomes[mta_name] = SenderClassOutcome(
            name=mta_name, messages=messages_per_mta, delivered=0, lost=0
        )
        # Tally after the run; keep a reference for later.
        outcomes[mta_name]._queue = queue  # type: ignore[attr-defined]

    # Primary-only notifier scripts.
    notifier = SpamBot(
        internet=testbed.internet,
        resolver=testbed.resolver,
        scheduler=testbed.scheduler,
        source_address=pool.allocate(),
        mx_behavior=MXBehavior.PRIMARY_ONLY,
        retry_model=FireAndForget(),
        rng=RandomStream(seed, "notifier"),
        helo_name="cron-box.victim-partner.example",
        walks_mx_on_failure=False,
    )
    for index in range(notifier_messages):
        notifier.assign(
            Message(
                sender=f"alerts{index}@monitoring.example",
                recipients=[f"oncall{index}@victim.example"],
                subject="disk almost full",
            )
        )

    testbed.run(horizon=horizon)

    for mta_name in sorted(PROFILES):
        outcome = outcomes[mta_name]
        queue: QueueManager = outcome._queue  # type: ignore[attr-defined]
        del outcome._queue  # type: ignore[attr-defined]
        for entry in queue.entries:
            if entry.state is QueueEntryState.DELIVERED:
                outcome.delivered += 1
                outcome.delays.append(entry.delivery_delay)
            else:
                outcome.lost += 1

    outcomes["notifier"] = SenderClassOutcome(
        name="notifier",
        messages=notifier_messages,
        delivered=len(notifier.delivered_tasks),
        lost=len(notifier.abandoned_tasks),
        delays=[
            task.delivery_delay
            for task in notifier.delivered_tasks
            if task.delivery_delay is not None
        ],
    )
    return NolistingImpactResult(outcomes=outcomes)
