"""Virtual hosts and TCP-style port listeners.

A :class:`VirtualHost` owns one or more IPv4 addresses and a table of port
listeners.  Connecting to a host/port either yields a :class:`Connection`
(the listener's ``accept`` produces an application-level session object) or a
:class:`ConnectionRefused` — which is exactly the distinction nolisting is
built on: the primary MX resolves to a host with port 25 closed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from .address import IPv4Address

SMTP_PORT = 25


class NetError(Exception):
    """Base class for network-level failures."""


class ConnectionRefused(NetError):
    """TCP RST: the target host is up but nothing listens on the port."""


class ConnectionReset(NetError):
    """An established connection died mid-session (RST after accept)."""


class HostUnreachable(NetError):
    """No host owns the target address (or the host is administratively down)."""


class Connection:
    """A established bidirectional channel to an application session.

    The ``session`` attribute is whatever the listener's factory returned —
    for SMTP it is a server-side protocol state machine the client drives
    synchronously (virtual time: latency is accounted by the caller, not by
    blocking).
    """

    __slots__ = ("local_address", "remote_address", "port", "session", "_open")

    def __init__(
        self,
        local_address: IPv4Address,
        remote_address: IPv4Address,
        port: int,
        session: Any,
    ) -> None:
        self.local_address = local_address
        self.remote_address = remote_address
        self.port = port
        self.session = session
        self._open = True

    @property
    def is_open(self) -> bool:
        return self._open

    def close(self) -> None:
        self._open = False

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return (
            f"Connection({self.local_address} -> {self.remote_address}:"
            f"{self.port}, {state})"
        )


# A listener factory receives the client address and returns a session object.
ListenerFactory = Callable[[IPv4Address], Any]


class VirtualHost:
    """A machine on the virtual internet.

    Parameters
    ----------
    name:
        Debug label (e.g. ``"smtp1.foo.net"`` or ``"bot-17"``).
    addresses:
        The IPv4 addresses the host answers on.  A host with an address but
        *no* listener on port 25 models the nolisting primary-MX machine: SYNs
        to port 25 get refused rather than timing out.
    """

    def __init__(self, name: str, addresses: List[IPv4Address]) -> None:
        if not addresses:
            raise NetError(f"host {name!r} needs at least one address")
        self.name = name
        self.addresses = list(addresses)
        self._listeners: Dict[int, ListenerFactory] = {}
        self.up = True

    @property
    def primary_address(self) -> IPv4Address:
        return self.addresses[0]

    def listen(self, port: int, factory: ListenerFactory) -> None:
        """Install a listener; replaces any existing listener on the port."""
        if not 0 < port <= 65535:
            raise NetError(f"invalid port {port}")
        self._listeners[port] = factory

    def close_port(self, port: int) -> None:
        """Remove the listener (subsequent connects are refused)."""
        self._listeners.pop(port, None)

    def is_listening(self, port: int) -> bool:
        return self.up and port in self._listeners

    def accept(self, port: int, client_address: IPv4Address) -> Any:
        """Produce an application session for an incoming connection."""
        if not self.up:
            raise HostUnreachable(f"host {self.name} is down")
        factory = self._listeners.get(port)
        if factory is None:
            raise ConnectionRefused(
                f"{self.name} ({self.primary_address}) refused port {port}"
            )
        return factory(client_address)

    def __repr__(self) -> str:
        ports = sorted(self._listeners)
        return f"VirtualHost({self.name!r}, {self.primary_address}, ports={ports})"
