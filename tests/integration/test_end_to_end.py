"""Cross-module integration tests exercising whole-system flows."""

import pytest

from repro.botnet.campaign import CommandAndControl, SpamCampaign, make_recipient_list
from repro.botnet.families import CUTWAIL, DARKMAILER, KELIHOS
from repro.core.testbed import Defense, Testbed, TestbedConfig
from repro.dns.resolver import StubResolver
from repro.greylist.whitelist import default_provider_whitelist
from repro.mta.profiles import PROFILES
from repro.mta.queue import QueueEntryState, QueueManager
from repro.net.address import pool_for
from repro.sim.rng import RandomStream
from repro.smtp.client import SMTPClient
from repro.smtp.message import Message


class TestBenignMailThroughGreylisting:
    """A real MTA profile delivering through the greylisted testbed."""

    @pytest.mark.parametrize("mta_name", sorted(PROFILES))
    def test_every_mta_profile_survives_300s_greylisting(self, mta_name):
        testbed = Testbed(
            TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=300.0)
        )
        pool = pool_for("203.0.113.0/24")
        client = SMTPClient(
            internet=testbed.internet,
            resolver=StubResolver(testbed.zones, clock=testbed.clock),
            source_address=pool.allocate(),
        )
        queue = QueueManager(
            testbed.scheduler, client, PROFILES[mta_name].schedule
        )
        message = Message(
            sender="person@company.example",
            recipients=["user@victim.example"],
        )
        queue.submit(message)
        testbed.run(horizon=86400.0)
        entry = queue.entries[0]
        assert entry.state is QueueEntryState.DELIVERED, mta_name
        assert entry.delivery_delay >= 300.0

    def test_mta_delivery_delays_ordered_by_first_retry(self):
        # postfix (5 min) must beat exim/exchange (15 min) through the
        # same greylisting policy.
        delays = {}
        for name in ("postfix", "exim", "exchange"):
            testbed = Testbed(
                TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=300.0)
            )
            client = SMTPClient(
                internet=testbed.internet,
                resolver=StubResolver(testbed.zones, clock=testbed.clock),
                source_address=pool_for("203.0.113.0/24").allocate(),
            )
            queue = QueueManager(testbed.scheduler, client, PROFILES[name].schedule)
            queue.submit(
                Message(
                    sender="p@company.example",
                    recipients=["user@victim.example"],
                )
            )
            testbed.run(horizon=86400.0)
            delays[name] = queue.entries[0].delivery_delay
        assert delays["postfix"] < delays["exim"]
        assert delays["postfix"] < delays["exchange"]


class TestBotnetFleetAgainstDefenses:
    def test_mixed_fleet_against_both_defenses(self):
        testbed = Testbed(
            TestbedConfig(defense=Defense.BOTH, greylist_delay=300.0)
        )
        rng = RandomStream(99, "fleet")
        bots = [
            family.build_bot(
                internet=testbed.internet,
                resolver=testbed.resolver,
                scheduler=testbed.scheduler,
                source_address=testbed.allocate_bot_address(),
                rng=rng.split(family.name),
            )
            for family in (CUTWAIL, KELIHOS, DARKMAILER)
        ]
        cnc = CommandAndControl(bots, rng=rng.split("dispatch"))
        campaign = SpamCampaign(
            sender="spam@botnet.example",
            recipients=make_recipient_list("victim.example", 30),
        )
        cnc.dispatch(campaign)
        testbed.run(horizon=400000.0)
        # §VI: the combination stops everything these families send.
        assert testbed.spam_delivered_to_protected() == 0
        assert testbed.server.stats.messages_accepted == 0
        # Bots did try: connection refusals and greylist deferrals observed.
        assert testbed.internet.connections_refused > 0

    def test_greylist_only_leaks_kelihos_but_not_others(self):
        testbed = Testbed(
            TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=300.0)
        )
        rng = RandomStream(5, "fleet2")
        kelihos_bot = KELIHOS.build_bot(
            internet=testbed.internet,
            resolver=testbed.resolver,
            scheduler=testbed.scheduler,
            source_address=testbed.allocate_bot_address(),
            rng=rng.split("kelihos"),
        )
        cutwail_bot = CUTWAIL.build_bot(
            internet=testbed.internet,
            resolver=testbed.resolver,
            scheduler=testbed.scheduler,
            source_address=testbed.allocate_bot_address(),
            rng=rng.split("cutwail"),
        )
        campaign = SpamCampaign(
            sender="spam@botnet.example",
            recipients=make_recipient_list("victim.example", 4),
        )
        jobs = campaign.single_recipient_jobs()
        for job in jobs[:2]:
            kelihos_bot.assign(job)
        for job in jobs[2:]:
            cutwail_bot.assign(job)
        testbed.run(horizon=200000.0)
        assert len(kelihos_bot.delivered_tasks) == 2
        assert cutwail_bot.delivered_tasks == []


class TestWhitelistedProviderSkipsGreylisting:
    def test_whitelisted_sender_accepted_first_try(self):
        testbed = Testbed(
            TestbedConfig(
                defense=Defense.GREYLISTING,
                greylist_delay=21600.0,
                greylist_whitelist=default_provider_whitelist(),
            )
        )
        client = SMTPClient(
            internet=testbed.internet,
            resolver=StubResolver(testbed.zones, clock=testbed.clock),
            source_address=pool_for("203.0.113.0/24").allocate(),
        )
        message = Message(
            sender="someone@gmail.com", recipients=["user@victim.example"]
        )
        result = client.send(message, "user@victim.example")
        assert result.succeeded

    def test_non_whitelisted_sender_still_greylisted(self):
        testbed = Testbed(
            TestbedConfig(
                defense=Defense.GREYLISTING,
                greylist_delay=21600.0,
                greylist_whitelist=default_provider_whitelist(),
            )
        )
        client = SMTPClient(
            internet=testbed.internet,
            resolver=StubResolver(testbed.zones, clock=testbed.clock),
            source_address=pool_for("203.0.113.0/24").allocate(),
        )
        message = Message(
            sender="someone@smallbiz.example",
            recipients=["user@victim.example"],
        )
        result = client.send(message, "user@victim.example")
        assert not result.succeeded
        assert result.should_retry


class TestGreylistStateAcrossCampaigns:
    def test_second_campaign_same_triplet_rides_the_whitelist(self):
        # The §V.A confound: once a spammer's triplet passes, later campaigns
        # with the same sender/recipient sail through.
        testbed = Testbed(
            TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=300.0)
        )
        bot = KELIHOS.build_bot(
            internet=testbed.internet,
            resolver=testbed.resolver,
            scheduler=testbed.scheduler,
            source_address=testbed.allocate_bot_address(),
            rng=RandomStream(1, "kelihos"),
        )
        first = Message(
            sender="spam@botnet.example",
            recipients=["user@victim.example"],
            campaign_id="first",
        )
        bot.assign(first)
        testbed.run(horizon=100000.0)
        assert len(bot.delivered_tasks) == 1

        second = Message(
            sender="spam@botnet.example",
            recipients=["user@victim.example"],
            campaign_id="second",
        )
        bot.assign(second)
        testbed.run(horizon=testbed.clock.now + 10.0)
        # Delivered instantly: greylisting does not track message content.
        assert len(bot.delivered_tasks) == 2
        assert testbed.campaign_ids_seen() == {"first", "second"}
