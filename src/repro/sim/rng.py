"""Deterministic random-number streams.

Every experiment takes a single integer ``seed``; components derive their own
independent sub-streams by *splitting* the root stream with a string label.
Splitting is stable: the same (seed, label-path) always yields the same
stream, regardless of what other components do — adding a new component to an
experiment never perturbs the randomness seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(seed: int, label: str) -> int:
    """Derive a child seed from (seed, label) via SHA-256.

    Hashing avoids the correlated low-bit problem of naive seed arithmetic and
    keeps derivation independent of Python's hash randomization.
    """
    payload = f"{seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A labelled, splittable wrapper around :class:`random.Random`.

    Parameters
    ----------
    seed:
        Root seed for this stream.
    label:
        Human-readable path of split labels, for debugging.
    """

    def __init__(self, seed: int, label: str = "root") -> None:
        self.seed = int(seed)
        self.label = label
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def split(self, label: str) -> "RandomStream":
        """Create an independent child stream identified by ``label``."""
        child_seed = _derive_seed(self.seed, label)
        return RandomStream(child_seed, f"{self.label}/{label}")

    # ------------------------------------------------------------------
    # Draws (thin, explicit delegation — no __getattr__ magic)
    # ------------------------------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def random_block(self, n: int) -> List[float]:
        """Draw ``n`` uniforms in bulk — bit-identical to ``n`` :meth:`random` calls.

        The columnar engines consume per-entity uniform draws by the
        hundred-thousand; a tight comprehension over the bound C method is
        several times faster than ``n`` Python-level :meth:`random` calls
        while advancing the underlying Mersenne Twister state identically,
        which is what keeps columnar and per-object runs bit-for-bit equal.
        """
        if n < 0:
            raise ValueError("block size must be >= 0")
        draw = self._rng.random
        return [draw() for _ in range(n)]

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def randrange(self, stop: int) -> int:
        return self._rng.randrange(stop)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def choices(self, population: Sequence[T], weights: Sequence[float], k: int) -> list:
        return self._rng.choices(population, weights=weights, k=k)

    def sample(self, population: Sequence[T], k: int) -> list:
        return self._rng.sample(population, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def lognormvariate(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Draw an index proportionally to ``weights``."""
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        x = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            if w < 0:
                raise ValueError("weights must be non-negative")
            acc += w
            if x < acc:
                return i
        return len(weights) - 1

    def zipf_rank(self, n: int, alpha: float = 1.0) -> int:
        """Draw a 1-based rank from a Zipf distribution over ``n`` items.

        Used by the synthetic internet to assign Alexa-style popularity.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        # Inverse-CDF on the normalized harmonic weights.
        weights = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
        return self.weighted_index(weights) + 1

    def __repr__(self) -> str:
        return f"RandomStream(seed={self.seed}, label={self.label!r})"


def spread(seed: int, labels: Iterable[str]) -> dict:
    """Convenience: build a dict of independent streams from one seed."""
    root = RandomStream(seed)
    return {label: root.split(label) for label in labels}
