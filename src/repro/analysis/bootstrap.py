"""Bootstrap confidence intervals.

The reproduction's figures come from finite simulated samples; reporting
them without uncertainty would overstate precision.  This module provides
a deterministic (seeded) percentile bootstrap for arbitrary statistics —
used by the sensitivity harness to put intervals on the Figure 5 medians
and the adoption percentages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..sim.rng import RandomStream


@dataclass(frozen=True)
class ConfidenceInterval:
    """A percentile-bootstrap interval around a point estimate."""

    estimate: float
    low: float
    high: float
    level: float

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, (int, float)):
            return NotImplemented  # type: ignore[return-value]
        return self.low <= float(value) <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] @{self.level:.0%}"
        )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[Sequence[float]], float],
    level: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for ``statistic`` over ``samples``."""
    if not samples:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < level < 1.0:
        raise ValueError("confidence level must lie in (0, 1)")
    if resamples < 10:
        raise ValueError("need at least 10 resamples")
    values = list(samples)
    n = len(values)
    rng = RandomStream(seed, "bootstrap")
    stats: List[float] = []
    for _ in range(resamples):
        resample = [values[rng.randrange(n)] for _ in range(n)]
        stats.append(float(statistic(resample)))
    stats.sort()
    alpha = (1.0 - level) / 2.0
    lo_index = max(0, min(len(stats) - 1, int(alpha * resamples)))
    hi_index = max(0, min(len(stats) - 1, int((1.0 - alpha) * resamples) - 1))
    return ConfidenceInterval(
        estimate=float(statistic(values)),
        low=stats[lo_index],
        high=stats[hi_index],
        level=level,
    )


def median(samples: Sequence[float]) -> float:
    """Median helper usable as a bootstrap statistic."""
    values = sorted(samples)
    n = len(values)
    if n == 0:
        raise ValueError("empty sample")
    mid = n // 2
    if n % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0


def mean(samples: Sequence[float]) -> float:
    """Mean helper usable as a bootstrap statistic."""
    if not samples:
        raise ValueError("empty sample")
    return sum(samples) / len(samples)
