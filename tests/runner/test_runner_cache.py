"""Unit tests for the on-disk shard result cache."""

import json

import pytest

from repro.runner.cache import ResultCache, canonical_params, default_cache_root


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path, version="test-1")


class TestCanonicalParams:
    def test_key_order_does_not_matter(self):
        assert canonical_params({"b": 2, "a": 1}) == canonical_params(
            {"a": 1, "b": 2}
        )

    def test_nested_structures_stable(self):
        a = canonical_params({"mix": {"y": 0.2, "x": 0.8}, "n": 3})
        b = canonical_params({"n": 3, "mix": {"x": 0.8, "y": 0.2}})
        assert a == b


class TestResultCache:
    def test_roundtrip(self, cache):
        params = {"seed": 7, "chunk": 3}
        cache.put("exp", params, {"total": 11})
        assert cache.get("exp", params) == {"total": 11}
        assert cache.hits == 1 and cache.stores == 1

    def test_miss_returns_default(self, cache):
        assert cache.get("exp", {"seed": 1}, default="nope") == "nope"
        assert cache.misses == 1

    def test_params_distinguish_entries(self, cache):
        cache.put("exp", {"seed": 1}, "one")
        cache.put("exp", {"seed": 2}, "two")
        assert cache.get("exp", {"seed": 1}) == "one"
        assert cache.get("exp", {"seed": 2}) == "two"

    def test_experiments_namespaced(self, cache):
        cache.put("alpha", {"seed": 1}, "a")
        assert cache.get("beta", {"seed": 1}) is None

    def test_version_mismatch_is_miss(self, tmp_path):
        old = ResultCache(root=tmp_path, version="v1")
        old.put("exp", {"seed": 1}, "stale")
        new = ResultCache(root=tmp_path, version="v2")
        assert new.get("exp", {"seed": 1}) is None

    def test_corrupt_file_is_miss(self, cache):
        params = {"seed": 9}
        path = cache.put("exp", params, "ok")
        path.write_text("{truncated", encoding="utf-8")
        assert cache.get("exp", params) is None

    def test_corrupt_file_quarantined_and_counted(self, cache):
        params = {"seed": 9}
        path = cache.put("exp", params, "ok")
        path.write_text("{truncated", encoding="utf-8")
        assert cache.get("exp", params) is None
        assert cache.corrupt == 1
        assert not path.exists()
        quarantined = path.with_suffix(path.suffix + ".corrupt")
        assert quarantined.exists()
        assert quarantined.read_text(encoding="utf-8") == "{truncated"

    def test_quarantined_entry_not_reparsed(self, cache):
        params = {"seed": 9}
        path = cache.put("exp", params, "ok")
        path.write_text("not json", encoding="utf-8")
        cache.get("exp", params)
        assert cache.get("exp", params) is None  # plain miss the 2nd time
        assert cache.corrupt == 1

    def test_wrong_structure_quarantined(self, cache):
        params = {"seed": 9}
        path = cache.put("exp", params, "ok")
        path.write_text('["valid json, wrong shape"]', encoding="utf-8")
        assert cache.get("exp", params) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_corrupt_event_logged(self, cache, caplog):
        import logging

        params = {"seed": 9}
        path = cache.put("exp", params, "ok")
        path.write_text("xx", encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.runner.cache"):
            cache.get("exp", params)
        assert any("cache_corrupt" in rec.message for rec in caplog.records)

    def test_version_mismatch_not_quarantined(self, tmp_path):
        old = ResultCache(root=tmp_path, version="v1")
        path = old.put("exp", {"seed": 1}, "stale")
        new = ResultCache(root=tmp_path, version="v2")
        assert new.get("exp", {"seed": 1}) is None
        assert new.corrupt == 0
        assert path.exists()  # healthy file from other code, left alone

    def test_missing_file_not_quarantined(self, cache):
        assert cache.get("exp", {"seed": 404}) is None
        assert cache.corrupt == 0

    def test_rewritten_entry_usable_after_quarantine(self, cache):
        params = {"seed": 9}
        path = cache.put("exp", params, "ok")
        path.write_text("xx", encoding="utf-8")
        cache.get("exp", params)
        cache.put("exp", params, "fresh")
        assert cache.get("exp", params) == "fresh"

    def test_entry_file_is_inspectable_json(self, cache):
        path = cache.put("exp", {"seed": 4}, [1, 2])
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["experiment"] == "exp"
        assert document["params"] == {"seed": 4}
        assert document["value"] == [1, 2]

    def test_contains(self, cache):
        assert not cache.contains("exp", {"seed": 3})
        cache.put("exp", {"seed": 3}, 0)
        assert cache.contains("exp", {"seed": 3})

    def test_clear_one_experiment(self, cache):
        cache.put("alpha", {"s": 1}, 1)
        cache.put("beta", {"s": 1}, 2)
        assert cache.clear("alpha") == 1
        assert cache.get("alpha", {"s": 1}) is None
        assert cache.get("beta", {"s": 1}) == 2

    def test_clear_all(self, cache):
        cache.put("alpha", {"s": 1}, 1)
        cache.put("beta", {"s": 1}, 2)
        assert cache.clear() == 2

    def test_no_leftover_temp_files(self, cache, tmp_path):
        cache.put("exp", {"seed": 1}, "v")
        assert not list(tmp_path.rglob("*.tmp"))


class TestDefaultRoot:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_root().name == "repro-greylisting"
