"""The shipped tree must satisfy its own determinism linter.

This is the executable form of the determinism contract in
``docs/ARCHITECTURE.md``: if a change reintroduces ambient randomness,
wall-clock reads, or hash-order dependence anywhere under ``src/repro``,
this test fails with the exact rule and location.
"""

from pathlib import Path

import repro
from repro.analysis.lint import lint_paths, render_human


def _package_root() -> Path:
    return Path(repro.__file__).resolve().parent


def test_src_repro_is_lint_clean():
    result = lint_paths([_package_root()])
    assert result.findings == [], "\n" + render_human(
        result.findings, files_checked=result.files_checked
    )


def test_linter_actually_ran_over_the_tree():
    result = lint_paths([_package_root()])
    # Guard against a silent no-op (e.g. a broken file iterator): the
    # package has dozens of modules and at least one inline suppression.
    assert result.files_checked > 50
    assert result.suppressed >= 1
