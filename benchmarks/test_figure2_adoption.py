"""Bench: regenerate Figure 2 (worldwide nolisting adoption)."""

import pytest

from repro.core.adoption import run_adoption_experiment
from repro.core.reports import figure2_text
from repro.scan.detect import DomainClass

from _util import emit

NUM_DOMAINS = 20000


def run_experiment():
    return run_adoption_experiment(num_domains=NUM_DOMAINS, seed=42)


def test_figure2_adoption(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=2, iterations=1)
    emit("Figure 2 — Nolisting mail server statistics", figure2_text(result))

    # Paper pie: 47.73% one MX, 45.97% multi-MX, 5.78% misconfig, 0.52%
    # nolisting.  The pipeline must recover the generated mix within the
    # granularity of the population size.
    percentages = result.measured_percentages()
    assert percentages[DomainClass.ONE_MX] == pytest.approx(47.73, abs=0.3)
    assert percentages[DomainClass.MULTI_MX_NO_NOLISTING] == pytest.approx(
        45.97, abs=0.3
    )
    assert percentages[DomainClass.DNS_MISCONFIGURED] == pytest.approx(
        5.78, abs=0.2
    )
    assert percentages[DomainClass.NOLISTING] == pytest.approx(0.52, abs=0.1)

    # The two-scan protocol classified every domain correctly despite
    # transient outages and elided glue records.
    assert result.confusion["wrong"] == 0
    assert result.repaired_mx_records > 0

    # Popularity cross-check: 1 adopter in top-15, 3 in top-500, 5 in top-1000.
    assert result.crosscheck.top15 == 1
    assert result.crosscheck.top500 == 3
    assert result.crosscheck.top1000 == 5

    # "the difference between the two experiments was very small"
    assert result.summary.flapped / result.summary.total_domains < 0.01
