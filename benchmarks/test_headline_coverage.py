"""Bench: the §VI headline — spam coverage of the two techniques combined."""

import pytest

from repro.analysis.tables import format_percent, render_table
from repro.core.coverage import build_coverage_report
from repro.core.defense_matrix import build_defense_matrix

from _util import emit


def run_report():
    matrix = build_defense_matrix(recipients=3)
    return build_coverage_report(matrix)


def test_headline_coverage(benchmark):
    report = benchmark.pedantic(run_report, rounds=2, iterations=1)

    table = render_table(
        headers=("Defence", "Global spam blocked"),
        rows=[
            ("greylisting alone", format_percent(report.greylisting_share)),
            ("nolisting alone", format_percent(report.nolisting_share)),
            ("both combined", format_percent(report.combined_share)),
        ],
        title="Section VI — global spam prevented (measured, not assumed)",
    )
    emit("Headline coverage", table)

    # "over 70% of the world spam is prevented by using either one or the
    # other technique."
    assert report.combined_share > 0.70
    assert report.combined_share == pytest.approx(0.7069, abs=0.005)
    assert report.combined_covers_all_families

    # "Between the two, greylisting seems to be more effective."
    assert report.greylisting_share > report.nolisting_share
