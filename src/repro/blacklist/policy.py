"""DNSBL-backed SMTP pre-acceptance policy.

The classic sender-based filter: look the connecting client up in a
blacklist and reject with a permanent 5xx when listed.  Composable with
greylisting via :class:`~repro.smtp.server.CompositePolicy` — DNSBL first,
greylisting second, which is the standard Postfix ``smtpd_recipient_
restrictions`` ordering and the configuration the synergy experiment uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..net.address import IPv4Address
from ..smtp.replies import Reply
from ..smtp.server import ConnectionPolicy, PolicyDecision
from .dnsbl import ReactiveBlacklist

#: The conventional reject code for a DNSBL hit.
DNSBL_REJECT_CODE = 554


@dataclass
class DNSBLEvent:
    """One policy decision driven by the blacklist."""

    timestamp: float
    client: IPv4Address
    listed: bool


class DNSBLPolicy(ConnectionPolicy):
    """Rejects RCPTs from blacklisted client addresses.

    The check runs at RCPT time (not on connect) so its decisions land in
    the same per-envelope server log greylisting uses, and so the policy
    also reports sightings: every spam attempt our server sees is itself a
    report to the blacklist — the local contribution alongside the global
    telemetry feed.
    """

    def __init__(
        self,
        blacklist: ReactiveBlacklist,
        report_attempts: bool = True,
        zone_name: str = "zen.dnsbl.example",
    ) -> None:
        self.blacklist = blacklist
        self.report_attempts = report_attempts
        self.zone_name = zone_name
        self.events: List[DNSBLEvent] = []
        self.rejections = 0

    def fingerprint(self) -> tuple:
        """Decision-function identity for the session-outcome cache.

        The blacklist's *current* listing state is per-client dynamics, so
        the batch engine folds it into the phase component of the cache
        key rather than the fingerprint.
        """
        return ("dnsbl", self.zone_name, self.report_attempts)

    def on_rcpt_to(
        self, client: IPv4Address, sender: str, recipient: str
    ) -> PolicyDecision:
        listed = self.blacklist.is_listed(client)
        self.events.append(
            DNSBLEvent(
                timestamp=self.blacklist.clock.now,
                client=client,
                listed=listed,
            )
        )
        if listed:
            self.rejections += 1
            return PolicyDecision.reject(
                Reply(
                    DNSBL_REJECT_CODE,
                    f"5.7.1 Service unavailable; client [{client}] blocked "
                    f"using {self.zone_name}",
                )
            )
        if self.report_attempts:
            # Not (yet) listed: this sighting still feeds the blacklist.
            self.blacklist.report(client)
        return PolicyDecision.ok()
