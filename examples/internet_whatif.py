#!/usr/bin/env python3
"""Internet-scale what-if: archive scans, detect offline, then raise adoption.

Workflow echoing the real study's file-based datasets:

1. generate a synthetic internet and run the two zmap-style scans;
2. archive the captures to plain-text files (the scans.io shape);
3. run the nolisting detection pipeline purely from the archived files;
4. then ask the what-if question the paper's discussion raises: how much
   spam would higher deployment rates block?  A live spam wave (Table I
   family mix) answers it, checked against the analytic model.

Run:  python examples/internet_whatif.py
"""

import tempfile
from pathlib import Path

from repro.analysis.tables import format_percent, render_table
from repro.core.internet_scale import sweep_deployment_rates
from repro.scan.detect import NolistingDetector
from repro.scan.population import PopulationConfig, SyntheticInternet
from repro.scan.scanner import DNSScanner, SMTPScanner
from repro.scan.serialize import (
    dump_dns_scan,
    dump_smtp_scan,
    load_dns_scan,
    load_smtp_scan,
)
from repro.sim.rng import RandomStream


def main() -> None:
    # --- 1-2: scan and archive --------------------------------------------
    internet = SyntheticInternet(PopulationConfig(num_domains=5000), seed=42)
    dns_scanner = DNSScanner(
        internet, glue_elision_rate=0.1, rng=RandomStream(42, "whatif")
    )
    smtp_scanner = SMTPScanner(internet)
    archive = Path(tempfile.mkdtemp(prefix="repro-scans-"))
    for index in (0, 1):
        dns = dns_scanner.scan(index)
        dns_scanner.parallel_resolve(dns)
        (archive / f"dns-{index}.txt").write_text(dump_dns_scan(dns))
        smtp = smtp_scanner.scan(index)
        (archive / f"smtp-{index}.txt").write_text(dump_smtp_scan(smtp))
    print(f"archived 2 DNS + 2 SMTP captures under {archive}")

    # --- 3: offline detection ---------------------------------------------
    detector = NolistingDetector(
        load_dns_scan((archive / "dns-0.txt").read_text()),
        load_smtp_scan((archive / "smtp-0.txt").read_text()),
        load_dns_scan((archive / "dns-1.txt").read_text()),
        load_smtp_scan((archive / "smtp-1.txt").read_text()),
    )
    summary = detector.summarize()
    print("\noffline detection over the archived files:")
    for klass, count in sorted(
        summary.counts.items(), key=lambda kv: kv[1], reverse=True
    ):
        print(f"  {klass.value:<14} {count:>5} "
              f"({format_percent(count / summary.total_domains)})")

    # --- 4: the what-if sweep ----------------------------------------------
    print("\nwhat if deployment grew?  spam wave (Table I mix) vs adoption:")
    sweep = sweep_deployment_rates(
        rates=[(0.0, 0.0), (0.2, 0.05), (0.5, 0.1), (0.8, 0.2)],
        messages=400,
    )
    print(
        render_table(
            headers=("Greylisting", "Nolisting", "Blocked (measured)",
                     "Blocked (model)"),
            rows=[
                (
                    format_percent(r.greylisting_rate),
                    format_percent(r.nolisting_rate),
                    format_percent(r.block_rate),
                    format_percent(r.predicted_block_rate),
                )
                for r in sweep
            ],
            title="Deployment levels vs spam blocked",
        )
    )
    print(
        "\nreading: today's ~0.5% nolisting adoption blocks almost nothing\n"
        "globally despite being effective per-domain — the techniques' value\n"
        "is to the deploying domain, and grows linearly with adoption."
    )


if __name__ == "__main__":
    main()
