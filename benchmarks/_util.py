"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper, prints
the reproduced artefact (run pytest with ``-s`` to see it) and asserts the
paper-matching properties so a silent regression cannot slip through.
"""


def emit(title: str, text: str) -> None:
    """Print a reproduced artefact with a banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")
