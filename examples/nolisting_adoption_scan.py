#!/usr/bin/env python3
"""Worldwide nolisting-adoption measurement (the Figure 2 pipeline).

Generates a synthetic internet with the paper's ground-truth mix, runs the
two-months-apart DNS + SMTP scan pair, pushes the captures through the
three-step detection pipeline, and prints the adoption breakdown plus the
Alexa-style popularity cross-check.

Run:  python examples/nolisting_adoption_scan.py [num_domains] [seed]
"""

import sys

from repro.core.adoption import (
    run_adoption_experiment,
    single_scan_false_positives,
)
from repro.core.reports import figure2_text
from repro.scan.detect import DomainClass


def main() -> None:
    num_domains = int(sys.argv[1]) if len(sys.argv) > 1 else 20000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    print(f"generating a synthetic internet of {num_domains} domains "
          f"(seed={seed}) ...")
    result = run_adoption_experiment(num_domains=num_domains, seed=seed)

    print()
    print(figure2_text(result))

    summary = result.summary
    print(f"\nscan coverage : {summary.servers_covered} MX records, "
          f"{summary.addresses_covered} resolved addresses")
    print(f"glue repaired : {result.repaired_mx_records} MX records "
          "re-resolved by the parallel scanner")
    print(f"scan-to-scan  : {summary.flapped} domains changed verdict "
          f"({100.0 * summary.flapped / summary.total_domains:.2f}%)")
    print(f"validation    : {result.confusion['correct']} correct, "
          f"{result.confusion['wrong']} wrong vs ground truth")

    nolisting_count = summary.counts[DomainClass.NOLISTING]
    print(f"\nnolisting domains found: {nolisting_count} "
          f"({100.0 * nolisting_count / summary.total_domains:.2f}% — the "
          "paper found 0.52%, over 133k domains at internet scale)")

    print("\nwhy two scans? single-scan candidates with 2% transient outages:")
    single = single_scan_false_positives(
        num_domains=num_domains, seed=seed, transient_outage_rate=0.02
    )
    print(f"  true adopters flagged : {single['true_positives']}")
    print(f"  transient outages misflagged : {single['false_positives']} "
          "(all removed by the two-scan protocol)")


if __name__ == "__main__":
    main()
