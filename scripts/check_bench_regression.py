#!/usr/bin/env python
"""Compare a pytest-benchmark JSON snapshot against a committed baseline.

Usage::

    python scripts/check_bench_regression.py BENCH_0.json bench-smoke.json

Benchmarks shared by both files are compared by their fastest observed
time (``stats.min``, the least noise-sensitive statistic).  Raw ratios
are meaningless across machines, so every ratio is first normalized by
the median ratio — a uniformly slower CI runner shifts all ratios
equally and cancels out, while a genuine regression in one benchmark
stands out against the rest.

The gate fails (exit 1) when any normalized ratio exceeds 1.25, i.e. a
benchmark got more than 25% slower *relative to the suite*.  To land an
intentional slowdown (e.g. trading speed for correctness), set
``ALLOW_BENCH_REGRESSION=1`` in the environment — the check then prints
its findings but always exits 0 — and refresh the baseline in the same
change (``make bench-json`` and commit the snapshot as ``BENCH_0.json``).

Stdlib-only, so it runs anywhere the repo does.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
from typing import Dict, List, Sequence

THRESHOLD = 1.25


def load_minimums(path: str) -> Dict[str, float]:
    """Map benchmark fullname -> fastest observed time, from one snapshot."""
    with open(path) as handle:
        data = json.load(handle)
    return {
        bench["fullname"]: float(bench["stats"]["min"])
        for bench in data.get("benchmarks", [])
    }


def main(argv: Sequence[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    baseline = load_minimums(baseline_path)
    current = load_minimums(current_path)

    shared = sorted(set(baseline) & set(current))
    new = sorted(set(current) - set(baseline))
    for name in new:
        # A benchmark added since the baseline was captured has nothing to
        # regress against; note it and move on.  It joins the gate once the
        # baseline is refreshed (make bench-json, commit as BENCH_0.json).
        print(
            f"  {name}: not in baseline {baseline_path}; "
            f"skipped (new benchmark, no reference time)"
        )
    if not shared:
        print(
            f"no benchmarks shared between {baseline_path} and "
            f"{current_path}; nothing to compare",
            file=sys.stderr,
        )
        return 2

    ratios = {name: current[name] / baseline[name] for name in shared}
    scale = statistics.median(ratios.values())
    print(
        f"comparing {len(shared)} shared benchmark(s); "
        f"machine-speed scale (median ratio) = {scale:.3f}"
    )

    regressions: List[str] = []
    for name in shared:
        normalized = ratios[name] / scale
        marker = " <-- REGRESSION" if normalized > THRESHOLD else ""
        print(
            f"  {name}: {baseline[name] * 1e3:.3f}ms -> "
            f"{current[name] * 1e3:.3f}ms "
            f"(normalized x{normalized:.2f}){marker}"
        )
        if normalized > THRESHOLD:
            regressions.append(name)

    if not regressions:
        print(
            f"OK: no benchmark more than {THRESHOLD - 1:.0%} over baseline"
        )
        return 0

    print(
        f"FAIL: {len(regressions)} benchmark(s) regressed more than "
        f"{THRESHOLD - 1:.0%} vs {baseline_path}: {', '.join(regressions)}",
        file=sys.stderr,
    )
    if os.environ.get("ALLOW_BENCH_REGRESSION"):
        print(
            "ALLOW_BENCH_REGRESSION is set; reporting only. "
            "Refresh BENCH_0.json in this change.",
            file=sys.stderr,
        )
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
