"""Unit tests for virtual hosts, connections and the virtual internet."""

import pytest

from repro.net.address import IPv4Address
from repro.net.host import (
    SMTP_PORT,
    ConnectionRefused,
    HostUnreachable,
    NetError,
    VirtualHost,
)
from repro.net.latency import FixedLatency, JitteredLatency, ZeroLatency
from repro.net.network import VirtualInternet
from repro.sim.rng import RandomStream


def addr(text):
    return IPv4Address.parse(text)


class TestVirtualHost:
    def test_requires_address(self):
        with pytest.raises(NetError):
            VirtualHost("empty", [])

    def test_listen_and_accept(self):
        host = VirtualHost("mail", [addr("10.0.0.1")])
        host.listen(25, lambda client: f"session-for-{client}")
        session = host.accept(25, addr("10.0.0.9"))
        assert "10.0.0.9" in session

    def test_closed_port_refuses(self):
        host = VirtualHost("nolisted", [addr("10.0.0.1")])
        with pytest.raises(ConnectionRefused):
            host.accept(SMTP_PORT, addr("10.0.0.9"))

    def test_close_port_removes_listener(self):
        host = VirtualHost("mail", [addr("10.0.0.1")])
        host.listen(25, lambda c: "s")
        host.close_port(25)
        assert not host.is_listening(25)

    def test_down_host_unreachable(self):
        host = VirtualHost("mail", [addr("10.0.0.1")])
        host.listen(25, lambda c: "s")
        host.up = False
        assert not host.is_listening(25)
        with pytest.raises(HostUnreachable):
            host.accept(25, addr("10.0.0.9"))

    def test_invalid_port_rejected(self):
        host = VirtualHost("mail", [addr("10.0.0.1")])
        with pytest.raises(NetError):
            host.listen(0, lambda c: "s")
        with pytest.raises(NetError):
            host.listen(70000, lambda c: "s")


class TestVirtualInternet:
    def _internet_with_server(self):
        internet = VirtualInternet()
        server = VirtualHost("mail", [addr("10.0.0.1")])
        server.listen(25, lambda client: {"client": str(client)})
        internet.register(server)
        return internet, server

    def test_connect_established(self):
        internet, _ = self._internet_with_server()
        connection = internet.connect(addr("10.9.9.9"), addr("10.0.0.1"), 25)
        assert connection.session["client"] == "10.9.9.9"
        assert connection.is_open
        connection.close()
        assert not connection.is_open
        assert internet.connections_established == 1

    def test_connect_refused_counted(self):
        internet = VirtualInternet()
        internet.register(VirtualHost("dead", [addr("10.0.0.2")]))
        with pytest.raises(ConnectionRefused):
            internet.connect(addr("10.9.9.9"), addr("10.0.0.2"), 25)
        assert internet.connections_refused == 1

    def test_connect_unreachable(self):
        internet = VirtualInternet()
        with pytest.raises(HostUnreachable):
            internet.connect(addr("10.9.9.9"), addr("10.0.0.3"), 25)

    def test_duplicate_name_rejected(self):
        internet = VirtualInternet()
        internet.register(VirtualHost("a", [addr("10.0.0.1")]))
        with pytest.raises(NetError):
            internet.register(VirtualHost("a", [addr("10.0.0.2")]))

    def test_duplicate_address_rejected(self):
        internet = VirtualInternet()
        internet.register(VirtualHost("a", [addr("10.0.0.1")]))
        with pytest.raises(NetError):
            internet.register(VirtualHost("b", [addr("10.0.0.1")]))

    def test_unregister_frees_address(self):
        internet = VirtualInternet()
        host = VirtualHost("a", [addr("10.0.0.1")])
        internet.register(host)
        internet.unregister(host)
        internet.register(VirtualHost("b", [addr("10.0.0.1")]))
        assert internet.host_named("b") is not None

    def test_syn_probe_matches_listening_state(self):
        internet, server = self._internet_with_server()
        assert internet.syn_probe(addr("10.0.0.1"), 25) is True
        assert internet.syn_probe(addr("10.0.0.1"), 80) is False
        assert internet.syn_probe(addr("10.0.0.99"), 25) is False
        server.close_port(25)
        assert internet.syn_probe(addr("10.0.0.1"), 25) is False

    def test_multihomed_host(self):
        internet = VirtualInternet()
        host = VirtualHost("farm", [addr("10.0.0.1"), addr("10.0.0.2")])
        host.listen(25, lambda c: "s")
        internet.register(host)
        assert internet.host_at(addr("10.0.0.2")) is host


class TestLatency:
    def test_zero_latency(self):
        assert ZeroLatency().rtt(addr("1.1.1.1"), addr("2.2.2.2")) == 0.0

    def test_fixed_latency(self):
        assert FixedLatency(0.2).rtt(addr("1.1.1.1"), addr("2.2.2.2")) == 0.2

    def test_fixed_latency_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-0.1)

    def test_jittered_latency_stable_per_pair(self):
        model = JitteredLatency(RandomStream(3), base_seconds=0.05)
        a, b = addr("1.1.1.1"), addr("2.2.2.2")
        assert model.rtt(a, b) == model.rtt(a, b)

    def test_jittered_latency_differs_between_pairs(self):
        model = JitteredLatency(RandomStream(3))
        assert model.rtt(addr("1.1.1.1"), addr("2.2.2.2")) != model.rtt(
            addr("1.1.1.1"), addr("3.3.3.3")
        )

    def test_jittered_latency_within_band(self):
        model = JitteredLatency(RandomStream(3), base_seconds=0.1, jitter_seconds=0.2)
        rtt = model.rtt(addr("1.1.1.1"), addr("2.2.2.2"))
        assert 0.1 <= rtt <= 0.3

    def test_internet_rtt_uses_model(self):
        internet = VirtualInternet(latency=FixedLatency(0.5))
        assert internet.rtt(addr("1.1.1.1"), addr("2.2.2.2")) == 0.5
