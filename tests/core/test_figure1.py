"""Tests for the generated Figure 1 protocol sequence."""

from repro.core.figure1 import figure1_text, run_figure1


class TestFigure1:
    def test_sequence_has_the_figures_beats(self):
        trace = run_figure1()
        rendered = str(trace)
        assert "MX QUERY for foo.net" in rendered
        assert "MX 0 smtp.foo.net; MX 15 smtp1.foo.net" in rendered
        assert "RST (connection refused)" in rendered
        assert "HELO local.domain.name" in rendered
        assert trace.delivered

    def test_primary_refusal_precedes_secondary_success(self):
        rendered = str(run_figure1())
        assert rendered.index("RST") < rendered.index("220 smtp.foo.net")

    def test_custom_domain(self):
        trace = run_figure1(domain="bar.example")
        assert "MX QUERY for bar.example" in str(trace)
        assert trace.delivered

    def test_text_rendering_has_header(self):
        text = figure1_text()
        assert text.startswith("Figure 1:")
        assert "delivered=True" in text

    def test_query_log_populated(self):
        # The resolver's wire trace drives the figure; it must record both
        # the MX and the follow-up A queries.
        from repro.core.testbed import Defense, Testbed, TestbedConfig
        from repro.dns.mxutil import resolve_exchangers

        testbed = Testbed(TestbedConfig(defense=Defense.NOLISTING))
        resolve_exchangers(testbed.resolver, "victim.example")
        qtypes = [qtype for (qtype, _, _) in testbed.resolver.query_log]
        assert "MX" in qtypes
        assert "A" in qtypes
