"""Greylisting triplets.

Greylisting keys deliveries on the triplet ``(client IP, envelope sender,
envelope recipient)``.  Two details matter for the paper's experiments:

* the *message itself is irrelevant* — a different message with the same
  triplet matches the existing entry (the confound ruled out in §V.A); and
* some deployments key on the client's /24 network instead of the exact IP,
  to tolerate webmail farms that rotate between nearby addresses (Table III
  shows five of ten providers switching IPs mid-delivery).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.address import IPv4Address
from ..smtp.message import validate_address


@dataclass(frozen=True, slots=True)
class Triplet:
    """The greylisting key.

    ``slots`` matters here: every RCPT command allocates one of these and
    the triplet database keys millions of lookups on them.
    """

    client: IPv4Address
    sender: str
    recipient: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "sender", validate_address(self.sender))
        object.__setattr__(self, "recipient", validate_address(self.recipient))

    def network_key(self, prefix: int = 24) -> "Triplet":
        """Coarsen the client part to its /prefix network base address."""
        if not 0 <= prefix <= 32:
            raise ValueError(f"invalid prefix {prefix}")
        mask = 0 if prefix == 0 else ((1 << 32) - 1) << (32 - prefix) & ((1 << 32) - 1)
        base = IPv4Address(self.client.value & mask)
        return Triplet(base, self.sender, self.recipient)

    def __str__(self) -> str:
        return f"({self.client}, {self.sender}, {self.recipient})"
