"""AST-based determinism & invariant linter (``python -m repro.analysis``).

The repository's headline guarantee — bit-for-bit identical results
across worker counts, cache hits and fault injection — rests on coding
conventions; this subpackage enforces them statically.  See
``docs/ARCHITECTURE.md`` § *Determinism contract* for the rule taxonomy
and suppression syntax (``# repro: noqa RULE-ID``).

* :mod:`~repro.analysis.lint.framework` — AST walker, checker registry,
  noqa handling;
* :mod:`~repro.analysis.lint.checkers` — the shipped rule suite;
* :mod:`~repro.analysis.lint.baseline` — grandfathered-finding ratchet;
* :mod:`~repro.analysis.lint.report` — human and JSON reporters;
* :mod:`~repro.analysis.lint.cli` — the ``python -m repro.analysis``
  front end.
"""

from .baseline import Baseline, BaselineError
from .findings import Finding, Severity
from .framework import (
    Checker,
    LintResult,
    ModuleContext,
    default_checkers,
    lint_paths,
    lint_source,
)
from .report import render_human, render_json

__all__ = [
    "Baseline",
    "BaselineError",
    "Checker",
    "Finding",
    "LintResult",
    "ModuleContext",
    "Severity",
    "default_checkers",
    "lint_paths",
    "lint_source",
    "render_human",
    "render_json",
]
