"""Shared-memory triplet backend for prefork multi-worker serving.

A fixed-capacity open-addressing hash table of packed triplet records in
one ``multiprocessing.shared_memory`` segment, so N policy workers (and
a supervising master) share a single greylist database with no broker
process — the missing piece ROADMAP item 2 left open ("a shared-memory
or mmap backend for multi-worker serving").

Layout
------
``[64-byte header][capacity x 304-byte records]``.  The header carries a
magic/version tag, the capacity, a monotonically increasing *order*
counter (scan order — see below) and live/tombstone/spill statistics.
Each record packs the full triplet key (client as a u32, sender and
recipient as length-prefixed UTF-8 up to 120 bytes each), a 64-bit
BLAKE2b key hash, the entry state (first/last seen, attempts, passed,
passed_at) and a per-record *sequence counter* for torn-read detection.

Concurrency
-----------
Two mechanisms, layered:

* **Writers** hold an ``fcntl.lockf`` byte-range lock over the *probe
  window* of the key's home bucket (byte ``1 + i`` of a sidecar lock
  file stands for bucket ``i``; byte 0 is the header lock).  Any two
  writers whose probe windows overlap therefore serialize, which makes
  every compound operation (:meth:`record_attempt`, :meth:`mark_passed`,
  :meth:`delete`) atomic across processes.  A window that wraps past the
  end of the table locks its two ranges in ascending byte order, so all
  lockers acquire ranges in one global order — no deadlock.  The header
  lock is only ever taken *while already holding* a window lock (or
  alone), never the other way around.
* **Readers** are lock-free: each record is a seqlock.  Writers bump the
  sequence to odd, mutate, bump back to even; readers re-read the
  sequence around a copy and retry on a torn snapshot.  A reader that
  observes an odd sequence for too long (a writer died mid-write) takes
  the slot's byte lock and repairs the slot to a tombstone — one lost
  in-flight record means one extra greylist deferral, never a corrupt
  decision.

POSIX record locks are per *process*: two backend instances inside one
process do not exclude each other (and closing any descriptor on the
lock file drops that process's locks).  One instance per process is the
intended topology — the prefork workers each attach exactly once; the
contention tests spawn real processes.

Scan order
----------
``scan()`` must yield insertion order (update keeps position, delete +
re-insert moves to the end) to stay bit-for-bit with ``MemoryBackend``
snapshots.  Slot position cannot encode that under recycling, so every
insert stamps the record with the header's order counter and ``scan``
sorts by it; in-place updates keep their stamp, expiry-replacement
inside :meth:`record_attempt` takes a fresh one (= delete + re-insert).

Degradation
-----------
The table never grows.  An insert that finds neither its key nor a free
slot within the probe window *spills*: the attempt is answered from a
transient entry (the client sees an ordinary greylist deferral) and the
header's spill counter increments — fail-safe deferral, not corruption.
Oversize keys (sender or recipient beyond 120 UTF-8 bytes) take the
same path.  Deletes leave tombstones that inserts recycle in place, so
churn does not consume the table.

Lifecycle
---------
``path=None`` creates a private, auto-named segment destroyed on
:meth:`close` (the ``:memory:`` analogue).  A ``path`` names a sentinel
file holding the segment name: creating writes it, reopening the same
path re-attaches to the live segment — state survives backend close and
reopen, the durable-restart contract the equivalence suite checks.
Segments created without ``persist=True`` are removed at process exit.
Workers attach to an existing segment directly with ``segment=<name>``.
Attachers must not let Python's resource tracker "clean up" the shared
segment when they exit (CPython registers attachments too), so every
instance unregisters itself and cleanup is explicit: the creator's
close / exit finalizer, or :meth:`unlink`.
"""

from __future__ import annotations

import fcntl
import hashlib
import os
import struct
import tempfile
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory, util as mp_util
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

from ..net.address import IPv4Address
from .backends import TripletBackend, timestamps_expired
from .store import TripletEntry
from .triplet import Triplet

#: Slots probed past the home bucket before an insert spills.
PROBE_WINDOW = 64

#: Longest sender/recipient the fixed record holds (UTF-8 bytes).
MAX_KEY_BYTES = 120

#: Default table capacity (records); ~4.8 MiB of /dev/shm.
DEFAULT_CAPACITY = 16384

#: Seqlock retries before a reader assumes the writer died mid-write.
_SEQLOCK_SPINS = 1024

_MAGIC = b"RGSHM01\0"
_HEADER = struct.Struct("<8sQQQQQQ")  # magic, capacity, order, live,
#                                       tombstones, spilled, reserved
HEADER_SIZE = 64

# seq u32 | state u8 | passed u8 | has_passed_at u8 | pad | key_hash u64
# | order u64 | client u32 | attempts u32 | first_seen f64 | last_seen
# f64 | passed_at f64 | sender_len u16 | recipient_len u16 | sender
# 120s | recipient 120s
_RECORD = struct.Struct("<IBBBxQQIIdddHH120s120s")
RECORD_SIZE = 304  # _RECORD.size (300) rounded up; 4 spare bytes
_SEQ = struct.Struct("<I")

_EMPTY, _LIVE, _TOMBSTONE = 0, 1, 2


def _segment_name_for_path(path: Union[str, Path]) -> str:
    digest = hashlib.blake2b(
        str(Path(path).resolve()).encode("utf-8"), digest_size=6
    ).hexdigest()
    return f"rgshm-{digest}"


def _lock_file_for_segment(segment: str) -> str:
    return os.path.join(tempfile.gettempdir(), f"{segment}.lock")


def _detach_from_tracker(shm: shared_memory.SharedMemory) -> None:
    """Undo CPython's automatic resource-tracker registration.

    Python 3.11 registers *every* ``SharedMemory`` (attachments
    included) with the per-process resource tracker, which unlinks the
    segment when that process exits — the first worker to finish would
    destroy the table under everyone else.  Ownership here is explicit
    instead: the creator's close / exit-finalizer path, or
    :meth:`unlink`.
    """
    resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]


def _unlink_segment(segment: str) -> None:
    """Best-effort removal of a named segment (idempotent)."""
    try:
        stale = shared_memory.SharedMemory(name=segment)
    except FileNotFoundError:
        pass
    else:
        stale.close()
        stale.unlink()  # also unregisters the attach-side tracker entry
    # The sidecar lockfile goes even when the segment is already gone:
    # a late attacher's O_CREAT can resurrect it after the creator's
    # unlink, and a second reap pass must still sweep it up.
    try:
        os.unlink(_lock_file_for_segment(segment))
    except FileNotFoundError:
        pass


def _reap_segment_at_exit(segment: str, owner_pid: int) -> None:
    """Process-exit hook destroying a segment its creator left behind.

    Registered through ``multiprocessing.util.Finalize`` rather than
    ``atexit``: experiment shards run inside multiprocessing workers,
    which exit through ``os._exit`` and never run plain atexit hooks —
    but they *do* run multiprocessing's ``_exit_function``.  Forked
    children inherit the finalizer registry, hence the pid guard: only
    the creating process may destroy the segment.
    """
    if os.getpid() != owner_pid:
        return
    _unlink_segment(segment)


class SharedMemoryBackend(TripletBackend):
    """Cross-process triplet table in one shared-memory segment.

    Parameters
    ----------
    path:
        Sentinel-file location for a reattachable table (``None`` for a
        private table destroyed on close).  The sentinel stores the
        generated segment name; reopening the same path re-attaches.
    capacity:
        Fixed record count (creation only; attaching reads it from the
        segment header).
    segment:
        Attach directly to an existing segment by name — the prefork
        workers' path.  Mutually exclusive with ``path``.
    persist:
        Creator only: skip the process-exit cleanup hook, leaving the
        segment for other processes (the serving master sets this when
        the operator names a ``--store-path``).
    """

    name = "shm"

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        capacity: Optional[int] = None,
        *,
        segment: Optional[str] = None,
        persist: bool = False,
    ) -> None:
        if path is not None and segment is not None:
            raise ValueError("path and segment are mutually exclusive")
        if capacity is not None and capacity < PROBE_WINDOW:
            raise ValueError(f"capacity must be >= {PROBE_WINDOW}")
        self.path = Path(path) if path is not None else None
        self._owner = False
        self._owner_pid = os.getpid()
        self._persist = persist
        self._closed = False
        self._finalizer: Optional[mp_util.Finalize] = None

        if segment is not None:
            self._shm = self._attach(segment)
        elif self.path is not None and self.path.exists():
            stored = self.path.read_text(encoding="utf-8").strip()
            try:
                self._shm = self._attach(stored)
            except FileNotFoundError:
                # The segment died with the machine (tmpfs) but the
                # sentinel survived on disk: start a fresh, empty table
                # — the same semantics as a deleted database file.
                self._shm = self._create(stored, capacity)
        else:
            name = (
                _segment_name_for_path(self.path)
                if self.path is not None
                else None
            )
            self._shm = self._create(name, capacity)
            if self.path is not None:
                self.path.write_text(self._shm.name + "\n", encoding="utf-8")

        self.segment = self._shm.name
        self.capacity = self._read_capacity()
        self._lock_path = _lock_file_for_segment(self.segment)
        self._lock_fd = os.open(self._lock_path, os.O_RDWR | os.O_CREAT, 0o600)
        if self._owner and not self._persist:
            self._finalizer = mp_util.Finalize(
                None,
                _reap_segment_at_exit,
                args=(self.segment, self._owner_pid),
                exitpriority=10,
            )

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------
    def _create(
        self, name: Optional[str], capacity: Optional[int]
    ) -> shared_memory.SharedMemory:
        cap = capacity if capacity is not None else DEFAULT_CAPACITY
        size = HEADER_SIZE + cap * RECORD_SIZE
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:
            # A same-named segment with no sentinel pointing at it is a
            # leftover from a crashed run: the sentinel is the source of
            # truth, so clear the stale segment and retry once.
            assert name is not None
            _unlink_segment(name)
            shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        _detach_from_tracker(shm)
        _HEADER.pack_into(shm.buf, 0, _MAGIC, cap, 0, 0, 0, 0, 0)
        self._owner = True
        return shm

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        shm = shared_memory.SharedMemory(name=name)
        _detach_from_tracker(shm)
        magic = bytes(shm.buf[:8])
        if magic != _MAGIC:
            shm.close()
            raise RuntimeError(
                f"shared segment {name!r} is not a triplet table "
                f"(magic {magic!r})"
            )
        return shm

    def _read_capacity(self) -> int:
        return int(_HEADER.unpack_from(self._shm.buf, 0)[1])

    def flush(self) -> None:
        """Shared memory is always current; nothing to flush."""

    def close(self) -> None:
        """Detach from the segment (destroying it for private tables)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        os.close(self._lock_fd)
        if self._owner and self.path is None and os.getpid() == self._owner_pid:
            _unlink_segment(self.segment)
        # The exit finalizer (when registered) deliberately stays: a
        # closed path-backed table must remain reattachable for the rest
        # of the process (the restart contract) yet still be reaped at
        # exit.

    def unlink(self) -> None:
        """Destroy the segment, its lock file and the sentinel file."""
        self.close()
        _unlink_segment(self.segment)
        if self._finalizer is not None:
            self._finalizer.cancel()
            self._finalizer = None
        if self.path is not None:
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------
    # Locking (fcntl byte ranges on the sidecar lock file)
    # ------------------------------------------------------------------
    def _lockf(self, cmd: int, start: int, length: int) -> None:
        # Sub-millisecond critical sections (a handful of struct packs)
        # striped across the table: serving-loop stalls are bounded and
        # tiny, the same trade the SQLite backend's WAL commit makes.
        fcntl.lockf(self._lock_fd, cmd, length, start, os.SEEK_SET)  # repro: noqa ASY001 - striped microsecond record lock; see module docstring

    def _window_ranges(self, home: int) -> List[Tuple[int, int]]:
        """Byte ranges covering the probe window of ``home`` (ascending)."""
        end = home + PROBE_WINDOW
        if end <= self.capacity:
            return [(1 + home, PROBE_WINDOW)]
        wrapped = end - self.capacity
        # Ascending start order is the global acquisition order that
        # keeps overlapping lockers deadlock-free.
        return [(1, wrapped), (1 + home, self.capacity - home)]

    @contextmanager
    def _window_lock(self, home: int) -> Iterator[None]:
        ranges = self._window_ranges(home)
        acquired = 0
        try:
            for start, length in ranges:
                self._lockf(fcntl.LOCK_EX, start, length)
                acquired += 1
            yield
        finally:
            for start, length in ranges[:acquired]:
                self._lockf(fcntl.LOCK_UN, start, length)

    @contextmanager
    def _slot_lock(self, index: int) -> Iterator[None]:
        """Lock one bucket byte — conflicts with any window holding it."""
        self._lockf(fcntl.LOCK_EX, 1 + index, 1)
        try:
            yield
        finally:
            self._lockf(fcntl.LOCK_UN, 1 + index, 1)

    @contextmanager
    def _header_lock(self) -> Iterator[None]:
        self._lockf(fcntl.LOCK_EX, 0, 1)
        try:
            yield
        finally:
            self._lockf(fcntl.LOCK_UN, 0, 1)

    def _header_read(self) -> Tuple[int, int, int, int]:
        """(order, live, tombstones, spilled) under the header lock."""
        with self._header_lock():
            fields = _HEADER.unpack_from(self._shm.buf, 0)
        return int(fields[2]), int(fields[3]), int(fields[4]), int(fields[5])

    def _header_update(
        self,
        *,
        take_order: bool = False,
        live: int = 0,
        tombstones: int = 0,
        spilled: int = 0,
    ) -> int:
        """Apply count deltas; returns the allocated order stamp (or 0)."""
        with self._header_lock():
            magic, cap, order, n_live, n_tomb, n_spill, _ = _HEADER.unpack_from(
                self._shm.buf, 0
            )
            stamp = 0
            if take_order:
                order += 1
                stamp = order
            _HEADER.pack_into(
                self._shm.buf,
                0,
                magic,
                cap,
                order,
                n_live + live,
                n_tomb + tombstones,
                n_spill + spilled,
                0,
            )
        return stamp

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def _offset(self, index: int) -> int:
        return HEADER_SIZE + index * RECORD_SIZE

    def _read_seq(self, index: int) -> int:
        return _SEQ.unpack_from(self._shm.buf, self._offset(index))[0]

    def _read_slot(self, index: int) -> Tuple:
        """Seqlock-consistent snapshot of one record (retry on torn)."""
        offset = self._offset(index)
        buf = self._shm.buf
        for _ in range(_SEQLOCK_SPINS):
            before = _SEQ.unpack_from(buf, offset)[0]
            if before & 1:
                continue
            fields = _RECORD.unpack_from(buf, offset)
            if _SEQ.unpack_from(buf, offset)[0] == before:
                return fields
        return self._repair_slot(index)

    def _repair_slot(self, index: int) -> Tuple:
        """A writer died holding the seqlock odd: drop its torn record.

        The slot byte lock conflicts with any live writer's window, so
        once it is held an odd sequence can only mean a crashed writer.
        The half-written record is unusable; tombstoning it costs the
        peer one extra greylist deferral and nothing else.  (Header
        statistics may drift by the in-flight record after a crash —
        they are reporting, never decision input.)
        """
        offset = self._offset(index)
        with self._slot_lock(index):
            fields = _RECORD.unpack_from(self._shm.buf, offset)
            if fields[0] & 1:
                cleared = (
                    ((fields[0] + 1) & 0xFFFFFFFF, _TOMBSTONE)
                    + (0,) * 11
                    + (b"", b"")
                )
                _RECORD.pack_into(self._shm.buf, offset, *cleared)
                fields = _RECORD.unpack_from(self._shm.buf, offset)
        return fields

    def _write_slot(self, index: int, fields: Tuple) -> None:
        """Seqlocked record write (caller holds the window lock).

        Order matters: the payload is written while the sequence is odd
        and the even sequence is published *last*, so a reader can never
        pair a torn payload with a stable-looking sequence.
        """
        offset = self._offset(index)
        buf = self._shm.buf
        seq = _SEQ.unpack_from(buf, offset)[0]
        odd = (seq + 1) & 0xFFFFFFFF
        _RECORD.pack_into(buf, offset, odd, *fields[1:])
        _SEQ.pack_into(buf, offset, (odd + 1) & 0xFFFFFFFF)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_key(triplet: Triplet) -> Optional[Tuple[bytes, bytes]]:
        sender = triplet.sender.encode("utf-8")
        recipient = triplet.recipient.encode("utf-8")
        if len(sender) > MAX_KEY_BYTES or len(recipient) > MAX_KEY_BYTES:
            return None
        return sender, recipient

    @staticmethod
    def _hash_key(client: int, sender: bytes, recipient: bytes) -> int:
        # Deterministic across processes (Python's hash() is salted per
        # interpreter, useless as a shared table's bucket function).
        digest = hashlib.blake2b(digest_size=8)
        digest.update(client.to_bytes(4, "little"))
        digest.update(sender)
        digest.update(b"\0")
        digest.update(recipient)
        return int.from_bytes(digest.digest(), "little")

    def _matches(
        self, fields: Tuple, key_hash: int, client: int,
        sender: bytes, recipient: bytes,
    ) -> bool:
        if fields[4] != key_hash or fields[6] != client:
            return False
        s_len, r_len = fields[11], fields[12]
        return (
            fields[13][:s_len] == sender and fields[14][:r_len] == recipient
        )

    def _entry_from_fields(
        self, fields: Tuple, triplet: Optional[Triplet] = None
    ) -> TripletEntry:
        if triplet is None:
            triplet = Triplet(
                IPv4Address(fields[6]),
                fields[13][: fields[11]].decode("utf-8"),
                fields[14][: fields[12]].decode("utf-8"),
            )
        return TripletEntry(
            triplet=triplet,
            first_seen=fields[8],
            last_seen=fields[9],
            attempts=fields[7],
            passed=bool(fields[2]),
            passed_at=fields[10] if fields[3] else None,
        )

    def _fields_from_entry(
        self, entry: TripletEntry, key_hash: int, order: int,
        sender: bytes, recipient: bytes,
    ) -> Tuple:
        return (
            0,  # seq placeholder; _write_slot manages the real value
            _LIVE,
            1 if entry.passed else 0,
            0 if entry.passed_at is None else 1,
            key_hash,
            order,
            entry.triplet.client.value,
            entry.attempts,
            entry.first_seen,
            entry.last_seen,
            entry.passed_at if entry.passed_at is not None else 0.0,
            len(sender),
            len(recipient),
            sender,
            recipient,
        )

    def _probe(
        self, home: int, key_hash: int, client: int,
        sender: bytes, recipient: bytes,
    ) -> Tuple[Optional[int], Optional[int]]:
        """(index of the live key, first reusable slot) within the window.

        Caller holds the window lock.  Probing stops at the first empty
        slot — inserts never place a key beyond one, so nothing can live
        past it.
        """
        free: Optional[int] = None
        for step in range(PROBE_WINDOW):
            index = (home + step) % self.capacity
            fields = _RECORD.unpack_from(self._shm.buf, self._offset(index))
            state = fields[1]
            if state == _EMPTY:
                if free is None:
                    free = index
                return None, free
            if state == _TOMBSTONE:
                if free is None:
                    free = index
                continue
            if self._matches(fields, key_hash, client, sender, recipient):
                return index, free
        return None, free

    # ------------------------------------------------------------------
    # TripletBackend interface
    # ------------------------------------------------------------------
    def get(self, triplet: Triplet) -> Optional[TripletEntry]:
        key = self._encode_key(triplet)
        if key is None:
            return None  # oversize keys are never stored (spill path)
        sender, recipient = key
        client = triplet.client.value
        key_hash = self._hash_key(client, sender, recipient)
        home = key_hash % self.capacity
        for step in range(PROBE_WINDOW):
            index = (home + step) % self.capacity
            fields = self._read_slot(index)
            state = fields[1]
            if state == _EMPTY:
                return None
            if state == _LIVE and self._matches(
                fields, key_hash, client, sender, recipient
            ):
                return self._entry_from_fields(fields, triplet)
        return None

    def put(self, entry: TripletEntry) -> None:
        key = self._encode_key(entry.triplet)
        if key is None:
            self._header_update(spilled=1)
            return
        sender, recipient = key
        client = entry.triplet.client.value
        key_hash = self._hash_key(client, sender, recipient)
        home = key_hash % self.capacity
        with self._window_lock(home):
            found, free = self._probe(home, key_hash, client, sender, recipient)
            if found is not None:
                order = _RECORD.unpack_from(self._shm.buf, self._offset(found))[5]
                self._write_slot(
                    found,
                    self._fields_from_entry(
                        entry, key_hash, order, sender, recipient
                    ),
                )
                return
            if free is None:
                self._header_update(spilled=1)
                return
            recycled = (
                _RECORD.unpack_from(self._shm.buf, self._offset(free))[1]
                == _TOMBSTONE
            )
            order = self._header_update(
                take_order=True, live=1, tombstones=-1 if recycled else 0
            )
            self._write_slot(
                free,
                self._fields_from_entry(
                    entry, key_hash, order, sender, recipient
                ),
            )

    def delete(self, triplet: Triplet) -> bool:
        key = self._encode_key(triplet)
        if key is None:
            return False
        sender, recipient = key
        client = triplet.client.value
        key_hash = self._hash_key(client, sender, recipient)
        home = key_hash % self.capacity
        with self._window_lock(home):
            found, _ = self._probe(home, key_hash, client, sender, recipient)
            if found is None:
                return False
            self._tombstone_slot(found)
        return True

    def _tombstone_slot(self, index: int) -> None:
        """Caller holds a lock covering ``index``."""
        fields = _RECORD.unpack_from(self._shm.buf, self._offset(index))
        self._write_slot(index, (fields[0], _TOMBSTONE) + fields[2:])
        self._header_update(live=-1, tombstones=1)

    def scan(self) -> Iterator[TripletEntry]:
        collected: List[Tuple[int, TripletEntry]] = []
        for index in range(self.capacity):
            fields = self._read_slot(index)
            if fields[1] == _LIVE:
                collected.append((fields[5], self._entry_from_fields(fields)))
        collected.sort(key=lambda pair: pair[0])
        return iter([entry for _, entry in collected])

    def expire(
        self, now: float, retry_window: float, whitelist_lifetime: float
    ) -> Tuple[int, int]:
        unconfirmed = confirmed = 0
        for index in range(self.capacity):
            fields = self._read_slot(index)
            if fields[1] != _LIVE or not timestamps_expired(
                bool(fields[2]), fields[9], now, retry_window,
                whitelist_lifetime,
            ):
                continue
            home = fields[4] % self.capacity
            with self._window_lock(home):
                current = _RECORD.unpack_from(
                    self._shm.buf, self._offset(index)
                )
                # The order stamp is unique per incarnation: same stamp
                # means the very record we sampled, not a recycled slot.
                if (
                    current[1] != _LIVE
                    or current[5] != fields[5]
                    or not timestamps_expired(
                        bool(current[2]), current[9], now, retry_window,
                        whitelist_lifetime,
                    )
                ):
                    continue
                self._tombstone_slot(index)
                if current[2]:
                    confirmed += 1
                else:
                    unconfirmed += 1
        return unconfirmed, confirmed

    def mark_passed(self, triplet: Triplet, now: float) -> bool:
        key = self._encode_key(triplet)
        if key is None:
            return False
        sender, recipient = key
        client = triplet.client.value
        key_hash = self._hash_key(client, sender, recipient)
        home = key_hash % self.capacity
        with self._window_lock(home):
            found, _ = self._probe(home, key_hash, client, sender, recipient)
            if found is None:
                return False
            fields = _RECORD.unpack_from(self._shm.buf, self._offset(found))
            if fields[2]:
                return False
            updated = (
                fields[0], _LIVE, 1, 1, fields[4], fields[5], fields[6],
                fields[7], fields[8], fields[9], now, fields[11],
                fields[12], fields[13], fields[14],
            )
            self._write_slot(found, updated)
        return True

    def record_attempt(
        self,
        triplet: Triplet,
        now: float,
        retry_window: float,
        whitelist_lifetime: float,
    ) -> Tuple[TripletEntry, Optional[str]]:
        """One delivery attempt, atomically, under the window lock.

        The whole lookup → expire-if-stale → create-or-update compound
        runs inside one critical section, so concurrent workers can
        never lose an attempt increment, resurrect an expired triplet,
        or double-count its expiry — the sequential-consistency contract
        the 8-worker equivalence tests check.
        """
        key = self._encode_key(triplet)
        if key is None:
            self._header_update(spilled=1)
            return (
                TripletEntry(triplet=triplet, first_seen=now, last_seen=now),
                None,
            )
        sender, recipient = key
        client = triplet.client.value
        key_hash = self._hash_key(client, sender, recipient)
        home = key_hash % self.capacity
        with self._window_lock(home):
            found, free = self._probe(home, key_hash, client, sender, recipient)
            if found is not None:
                fields = _RECORD.unpack_from(self._shm.buf, self._offset(found))
                if timestamps_expired(
                    bool(fields[2]), fields[9], now, retry_window,
                    whitelist_lifetime,
                ):
                    # Expired: replace in place as delete + re-insert
                    # (fresh order stamp moves it to the end of scan).
                    expired = "confirmed" if fields[2] else "unconfirmed"
                    entry = TripletEntry(
                        triplet=triplet, first_seen=now, last_seen=now
                    )
                    order = self._header_update(take_order=True)
                    self._write_slot(
                        found,
                        self._fields_from_entry(
                            entry, key_hash, order, sender, recipient
                        ),
                    )
                    return entry, expired
                entry = TripletEntry(
                    triplet=triplet,
                    first_seen=fields[8],
                    last_seen=now,
                    attempts=fields[7] + 1,
                    passed=bool(fields[2]),
                    passed_at=fields[10] if fields[3] else None,
                )
                updated = (
                    fields[0], _LIVE, fields[2], fields[3], fields[4],
                    fields[5], fields[6], fields[7] + 1, fields[8], now,
                    fields[10], fields[11], fields[12], fields[13],
                    fields[14],
                )
                self._write_slot(found, updated)
                return entry, None
            entry = TripletEntry(triplet=triplet, first_seen=now, last_seen=now)
            if free is None:
                self._header_update(spilled=1)
                return entry, None
            recycled = (
                _RECORD.unpack_from(self._shm.buf, self._offset(free))[1]
                == _TOMBSTONE
            )
            order = self._header_update(
                take_order=True, live=1, tombstones=-1 if recycled else 0
            )
            self._write_slot(
                free,
                self._fields_from_entry(
                    entry, key_hash, order, sender, recipient
                ),
            )
            return entry, None

    def __len__(self) -> int:
        return self._header_read()[1]

    def confirmed_count(self) -> int:
        count = 0
        for index in range(self.capacity):
            fields = self._read_slot(index)
            if fields[1] == _LIVE and fields[2]:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spill_count(self) -> int:
        """Attempts answered without storage because the table was full
        (or the key oversize) — the graceful-degradation alarm metric."""
        return self._header_read()[3]

    @property
    def tombstone_count(self) -> int:
        return self._header_read()[2]

    def __repr__(self) -> str:
        return (
            f"SharedMemoryBackend(segment={self.segment!r}, "
            f"capacity={self.capacity}, live={len(self)})"
        )
