"""repro — reproduction of "Measuring the Role of Greylisting and Nolisting
in Fighting Spam" (Pagani et al., DSN 2016).

The package is layered bottom-up:

* :mod:`repro.sim` — deterministic discrete-event kernel (clock, scheduler,
  splittable RNG streams);
* :mod:`repro.net` — virtual IPv4 internet (addresses, hosts, ports);
* :mod:`repro.dns` — zones, resolver, MX handling, nolisting setup;
* :mod:`repro.smtp` — RFC 5321 server state machine and compliant client;
* :mod:`repro.greylist` — Postgrey-compatible triplet greylisting;
* :mod:`repro.mta` — benign MTA retry schedules (Table IV profiles);
* :mod:`repro.botnet` — the four spam-family behaviour models (Table I);
* :mod:`repro.webmail` — the ten webmail provider models (Table III);
* :mod:`repro.scan` — internet-scale scanning and nolisting detection;
* :mod:`repro.maillog` — anonymized greylist logs + university deployment;
* :mod:`repro.analysis` — CDFs, statistics, table rendering;
* :mod:`repro.core` — the paper's experiments, one callable per
  table/figure.

Quick start::

    from repro.core import build_defense_matrix, table2_text
    matrix = build_defense_matrix()
    print(table2_text(matrix))
"""

from . import (  # noqa: F401 — re-exported subpackages
    analysis,
    blacklist,
    botnet,
    core,
    dns,
    filter,
    greylist,
    maillog,
    mta,
    net,
    scan,
    sim,
    smtp,
    webmail,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "blacklist",
    "botnet",
    "core",
    "dns",
    "filter",
    "greylist",
    "maillog",
    "mta",
    "net",
    "scan",
    "sim",
    "smtp",
    "webmail",
    "__version__",
]
