"""Ablation bench: each defence alone vs both combined.

§VI: "our experiments show that using both techniques together is a very
effective way to protect against the majority of spam."  Runs every family
against NONE / NOLISTING / GREYLISTING / BOTH and tabulates who gets
through where.
"""

from repro.analysis.tables import mark, render_table
from repro.botnet.families import FAMILIES
from repro.botnet.samples import samples_of
from repro.core.defense_matrix import run_sample
from repro.core.testbed import Defense

from _util import emit

DEFENSES = (Defense.NONE, Defense.NOLISTING, Defense.GREYLISTING, Defense.BOTH)


def run_grid():
    grid = {}
    for family in FAMILIES:
        sample = samples_of(family.name)[0]
        for defense in DEFENSES:
            run = run_sample(sample, defense, recipients=3)
            grid[(family.name, defense)] = run
    return grid


def test_ablation_combined_defenses(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    table = render_table(
        headers=("Family", "none", "nolisting", "greylisting", "both"),
        rows=[
            (
                family.name,
                mark(grid[(family.name, Defense.NONE)].blocked),
                mark(grid[(family.name, Defense.NOLISTING)].blocked),
                mark(grid[(family.name, Defense.GREYLISTING)].blocked),
                mark(grid[(family.name, Defense.BOTH)].blocked),
            )
            for family in FAMILIES
        ],
        title="Blocked? (YES = no spam delivered) per family per defence",
    )
    emit("Ablation — defence combinations", table)

    for family in FAMILIES:
        # Sanity: with no defence every family delivers.
        assert not grid[(family.name, Defense.NONE)].blocked, family.name
        # The combination blocks all four families.
        assert grid[(family.name, Defense.BOTH)].blocked, family.name
        # And each single defence misses at least one family (so neither
        # alone is sufficient).

    nolisting_misses = [
        f.name for f in FAMILIES if not grid[(f.name, Defense.NOLISTING)].blocked
    ]
    greylisting_misses = [
        f.name for f in FAMILIES if not grid[(f.name, Defense.GREYLISTING)].blocked
    ]
    assert nolisting_misses == ["Cutwail", "Darkmailer", "Darkmailer(v3)"]
    assert greylisting_misses == ["Kelihos"]
