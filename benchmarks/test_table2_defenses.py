"""Bench: regenerate Table II (per-sample effect of the two defences).

Runs all 11 malware samples against a nolisted server and a greylisted
server and checks the verdict matrix against the paper's check-marks.
"""

from repro.core.defense_matrix import build_defense_matrix
from repro.core.reports import table2_text
from repro.core.testbed import Defense

from _util import emit

#: The paper's Table II, per family: (greylisting effective, nolisting effective).
PAPER_VERDICTS = {
    "Cutwail": (True, False),
    "Kelihos": (False, True),
    "Darkmailer": (True, False),
    "Darkmailer(v3)": (True, False),
}


def run_matrix():
    return build_defense_matrix(recipients=3)


def test_table2_defense_matrix(benchmark):
    matrix = benchmark.pedantic(run_matrix, rounds=2, iterations=1)
    emit("Table II — Effect of nolisting and greylisting per sample", table2_text(matrix))

    grey = matrix.family_verdicts(Defense.GREYLISTING)
    nolist = matrix.family_verdicts(Defense.NOLISTING)
    for family, (grey_ok, nolist_ok) in PAPER_VERDICTS.items():
        assert grey[family] == grey_ok, f"{family} vs greylisting"
        assert nolist[family] == nolist_ok, f"{family} vs nolisting"

    # Every sample ran under both defences.
    assert len(matrix.runs) == 22
