"""Unit tests for the CompositePolicy combinator."""

import pytest

from repro.greylist.policy import GreylistPolicy
from repro.net.address import IPv4Address
from repro.sim.clock import Clock
from repro.smtp.replies import Reply
from repro.smtp.server import (
    CompositePolicy,
    ConnectionPolicy,
    PolicyDecision,
)

CLIENT = IPv4Address.parse("198.51.100.7")


class Tagging(ConnectionPolicy):
    """Accepts everything but records which hooks ran."""

    def __init__(self):
        self.calls = []

    def on_connect(self, client):
        self.calls.append("connect")
        return PolicyDecision.ok()

    def on_rcpt_to(self, client, sender, recipient):
        self.calls.append("rcpt")
        return PolicyDecision.ok()


class Rejecting(ConnectionPolicy):
    def __init__(self, code=554):
        self.code = code
        self.rcpt_calls = 0

    def on_rcpt_to(self, client, sender, recipient):
        self.rcpt_calls += 1
        return PolicyDecision.reject(Reply(self.code, "no"))


class TestCompositePolicy:
    def test_requires_policies(self):
        with pytest.raises(ValueError):
            CompositePolicy([])

    def test_all_accept(self):
        a, b = Tagging(), Tagging()
        composite = CompositePolicy([a, b])
        assert composite.on_rcpt_to(CLIENT, "s@x.example", "r@y.example").accept
        assert a.calls == ["rcpt"] and b.calls == ["rcpt"]

    def test_first_rejection_wins_and_short_circuits(self):
        first = Rejecting(code=554)
        second = Rejecting(code=450)
        composite = CompositePolicy([first, second])
        decision = composite.on_rcpt_to(CLIENT, "s@x.example", "r@y.example")
        assert not decision.accept
        assert decision.reply.code == 554
        assert first.rcpt_calls == 1
        assert second.rcpt_calls == 0  # never consulted

    def test_dnsbl_before_greylist_spares_the_triplet_db(self):
        clock = Clock()
        greylist = GreylistPolicy(clock=clock, delay=300)
        composite = CompositePolicy([Rejecting(), greylist])
        composite.on_rcpt_to(CLIENT, "s@x.example", "r@y.example")
        # The rejection upstream means greylisting never saw the attempt.
        assert greylist.store.size == 0

    def test_greylist_inside_composite_still_works(self):
        clock = Clock()
        greylist = GreylistPolicy(clock=clock, delay=300)
        composite = CompositePolicy([Tagging(), greylist])
        assert not composite.on_rcpt_to(CLIENT, "s@x.example", "r@y.example").accept
        clock.advance_by(301)
        assert composite.on_rcpt_to(CLIENT, "s@x.example", "r@y.example").accept

    def test_connect_hook_chains(self):
        a = Tagging()
        composite = CompositePolicy([a])
        assert composite.on_connect(CLIENT).accept
        assert "connect" in a.calls

    def test_default_hooks_accept(self):
        composite = CompositePolicy([ConnectionPolicy()])
        assert composite.on_helo(CLIENT, "x").accept
        assert composite.on_mail_from(CLIENT, "s@x.example").accept
