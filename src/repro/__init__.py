"""repro — reproduction of "Measuring the Role of Greylisting and Nolisting
in Fighting Spam" (Pagani et al., DSN 2016).

The package is layered bottom-up:

* :mod:`repro.sim` — deterministic discrete-event kernel (clock, scheduler,
  splittable RNG streams);
* :mod:`repro.net` — virtual IPv4 internet (addresses, hosts, ports);
* :mod:`repro.dns` — zones, resolver, MX handling, nolisting setup;
* :mod:`repro.smtp` — RFC 5321 server state machine and compliant client;
* :mod:`repro.greylist` — Postgrey-compatible triplet greylisting;
* :mod:`repro.mta` — benign MTA retry schedules (Table IV profiles);
* :mod:`repro.botnet` — the four spam-family behaviour models (Table I);
* :mod:`repro.webmail` — the ten webmail provider models (Table III);
* :mod:`repro.scan` — internet-scale scanning and nolisting detection;
* :mod:`repro.maillog` — anonymized greylist logs + university deployment;
* :mod:`repro.analysis` — CDFs, statistics, table rendering;
* :mod:`repro.core` — the paper's experiments, one callable per
  table/figure;
* :mod:`repro.runner` — parallel sharded experiment runner (process pool,
  deterministic merge, on-disk result cache).

Quick start::

    from repro.core import build_defense_matrix, table2_text
    matrix = build_defense_matrix()
    print(table2_text(matrix))
"""

# Defined before the subpackage imports so modules (e.g. the runner's
# result cache, which keys entries on the package version) can read it
# while the package is still initializing.
__version__ = "1.1.0"

from . import (  # noqa: F401,E402 — re-exported subpackages
    analysis,
    blacklist,
    botnet,
    core,
    dns,
    filter,
    greylist,
    maillog,
    mta,
    net,
    runner,
    scan,
    sim,
    smtp,
    webmail,
)

__all__ = [
    "analysis",
    "blacklist",
    "botnet",
    "core",
    "dns",
    "filter",
    "greylist",
    "maillog",
    "mta",
    "net",
    "runner",
    "scan",
    "sim",
    "smtp",
    "webmail",
    "__version__",
]
