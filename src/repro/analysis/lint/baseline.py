"""Baseline (grandfathered-findings) support for the determinism linter.

A baseline lets the linter gate *new* violations while tolerating ones
that predate a rule — the same ratchet model mypy and ruff users reach
for when adopting a tool on an existing tree.  Entries match on
``(rule, path, message)`` and deliberately ignore line numbers, so
unrelated edits that shift code around do not resurrect grandfathered
findings.  Matching is multiset-aware: a baseline with two entries for
the same key tolerates at most two live findings of that key.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Counter as CounterType
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

_FORMAT_VERSION = 1

BaselineKey = Tuple[str, str, str]


class BaselineError(ValueError):
    """Raised when a baseline file exists but cannot be understood."""


@dataclass
class Baseline:
    """A multiset of grandfathered findings."""

    entries: CounterType[BaselineKey] = field(default_factory=Counter)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(entries=Counter(f.baseline_key() for f in findings))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise BaselineError(f"{path}: not valid JSON ({error})") from error
        if (
            not isinstance(document, dict)
            or document.get("version") != _FORMAT_VERSION
            or not isinstance(document.get("findings"), list)
        ):
            raise BaselineError(
                f"{path}: expected a v{_FORMAT_VERSION} baseline document"
            )
        entries: CounterType[BaselineKey] = Counter()
        for row in document["findings"]:
            if not isinstance(row, dict):
                raise BaselineError(f"{path}: malformed entry {row!r}")
            try:
                key = (str(row["rule"]), str(row["path"]), str(row["message"]))
            except KeyError as error:
                raise BaselineError(
                    f"{path}: entry missing field {error}"
                ) from error
            entries[key] += int(row.get("count", 1))
        return cls(entries=entries)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def write(self, path: Path) -> None:
        rows: List[Dict[str, object]] = []
        for (rule, module_path, message), count in sorted(self.entries.items()):
            row: Dict[str, object] = {
                "rule": rule,
                "path": module_path,
                "message": message,
            }
            if count != 1:
                row["count"] = count
            rows.append(row)
        document = {"version": _FORMAT_VERSION, "findings": rows}
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into ``(new, grandfathered)``.

        Findings are consumed against the baseline multiset in order, so
        with N grandfathered entries and N+1 live findings of the same
        key, exactly one comes back as new.
        """
        budget = Counter(self.entries)
        new: List[Finding] = []
        known: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if budget[key] > 0:
                budget[key] -= 1
                known.append(finding)
            else:
                new.append(finding)
        return new, known

    def __len__(self) -> int:
        return sum(self.entries.values())
