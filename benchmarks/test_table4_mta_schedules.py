"""Bench: regenerate Table IV (default MTA retransmission schedules)."""

import pytest

from repro.core.mta_survey import run_mta_survey
from repro.core.reports import table4_text

from _util import emit

#: Paper rows: mta -> (first three retransmissions in minutes, queue days).
PAPER_ROWS = {
    "sendmail": ([10, 20, 30], 5),
    "exim": ([15, 30, 45], 4),
    "postfix": ([5, 10, 15], 5),
    "qmail": ([6.67, 26.67, 60], 7),
    "courier": ([5, 10, 15], 7),
    "exchange": ([15, 30, 45], 2),
}


def test_table4_mta_schedules(benchmark):
    rows = benchmark(run_mta_survey)
    emit("Table IV — Retransmission time of popular MTA servers", table4_text(rows))

    assert [r.mta for r in rows] == list(PAPER_ROWS)
    for row in rows:
        first_three, days = PAPER_ROWS[row.mta]
        assert row.retransmission_minutes[:3] == pytest.approx(
            first_three, abs=0.01
        ), row.mta
        assert row.max_queue_days == days, row.mta

    # "Exchange was the only MTA not RFC-822 compliant with respect to the
    # time-to-live."
    violators = [r.mta for r in rows if not r.rfc_compliant_lifetime]
    assert violators == ["exchange"]
