"""Tests for the seed-sensitivity harness."""

import pytest

from repro.core.sensitivity import (
    adoption_sensitivity,
    deployment_sensitivity,
    verdicts_seed_invariant,
)


class TestAdoptionSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return adoption_sensitivity(seeds=(1, 2, 3), num_domains=3000)

    def test_pipeline_perfect_at_every_seed(self, result):
        assert all(wrong == 0 for wrong in result.misclassified)

    def test_nolisting_share_stable(self, result):
        # The generator apportions categories exactly; the measured share
        # barely moves across seeds.
        assert result.nolisting_spread < 0.2
        for pct in result.nolisting_pct:
            assert pct == pytest.approx(0.52, abs=0.15)

    def test_one_mx_share_stable(self, result):
        for pct in result.one_mx_pct:
            assert pct == pytest.approx(47.73, abs=0.5)


class TestDeploymentSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return deployment_sensitivity(seeds=(1, 2, 3), num_messages=600)

    def test_median_delay_in_figure5_band_at_every_seed(self, result):
        for m in result.medians:
            assert 300.0 <= m <= 1200.0

    def test_bootstrap_cis_cover_their_estimates(self, result):
        for m, ci in zip(result.medians, result.median_cis):
            assert m in ci

    def test_within_10min_fraction_stable(self, result):
        for fraction in result.within_10min:
            assert 0.30 <= fraction <= 0.75

    def test_spread_reported(self, result):
        assert result.median_spread >= 0.0


class TestVerdictInvariance:
    def test_table2_verdicts_do_not_depend_on_seed(self):
        # The behavioural verdicts are structural: greylisting always
        # blocks fire-and-forget families, nolisting always blocks
        # primary-only ones — whatever the RNG draws.
        assert verdicts_seed_invariant(seeds=(3, 11))
