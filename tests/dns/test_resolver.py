"""Unit tests for the stub resolver: caching, errors and glue elision."""

import pytest

from repro.dns.resolver import NXDomain, ServFail, StubResolver
from repro.dns.zone import ZoneStore
from repro.net.address import IPv4Address
from repro.sim.clock import Clock
from repro.sim.rng import RandomStream


def addr(text):
    return IPv4Address.parse(text)


@pytest.fixture
def zones():
    store = ZoneStore()
    zone = store.create("foo.net")
    zone.add_a("smtp.foo.net", addr("1.2.3.4"))
    zone.add_a("smtp1.foo.net", addr("1.2.3.5"))
    zone.add_mx(0, "smtp.foo.net")
    zone.add_mx(15, "smtp1.foo.net")
    return store


class TestAQueries:
    def test_resolve_a(self, zones):
        resolver = StubResolver(zones)
        records = resolver.resolve_a("smtp.foo.net")
        assert records[0].address == addr("1.2.3.4")

    def test_resolve_address_shortcut(self, zones):
        resolver = StubResolver(zones)
        assert resolver.resolve_address("smtp.foo.net") == addr("1.2.3.4")

    def test_nxdomain_for_unknown_zone(self, zones):
        resolver = StubResolver(zones)
        with pytest.raises(NXDomain):
            resolver.resolve_a("smtp.bar.net")

    def test_nxdomain_for_unknown_name_in_zone(self, zones):
        resolver = StubResolver(zones)
        with pytest.raises(NXDomain):
            resolver.resolve_a("ghost.foo.net")

    def test_nodata_for_apex_without_a(self, zones):
        resolver = StubResolver(zones)
        assert resolver.resolve_a("foo.net") == []

    def test_resolve_address_raises_on_nodata(self, zones):
        resolver = StubResolver(zones)
        with pytest.raises(NXDomain):
            resolver.resolve_address("foo.net")


class TestMXQueries:
    def test_resolve_mx_with_glue(self, zones):
        resolver = StubResolver(zones)
        answer = resolver.resolve_mx("foo.net")
        assert len(answer.records) == 2
        assert answer.additional["smtp.foo.net"] == addr("1.2.3.4")
        assert answer.additional["smtp1.foo.net"] == addr("1.2.3.5")

    def test_glue_elision(self, zones):
        resolver = StubResolver(
            zones, glue_elision_rate=1.0, rng=RandomStream(1)
        )
        answer = resolver.resolve_mx("foo.net")
        assert answer.additional == {}
        assert len(answer.records) == 2  # records themselves still present

    def test_elision_requires_rng(self, zones):
        with pytest.raises(ValueError):
            StubResolver(zones, glue_elision_rate=0.5)

    def test_elision_rate_bounds(self, zones):
        with pytest.raises(ValueError):
            StubResolver(zones, glue_elision_rate=1.5, rng=RandomStream(1))

    def test_mx_for_unknown_domain(self, zones):
        resolver = StubResolver(zones)
        with pytest.raises(NXDomain):
            resolver.resolve_mx("bar.net")

    def test_dangling_exchange_omitted_from_additional(self, zones):
        zones.zone_for("foo.net").add_mx(20, "ghost.foo.net")
        resolver = StubResolver(zones)
        answer = resolver.resolve_mx("foo.net")
        assert "ghost.foo.net" not in answer.additional
        assert len(answer.records) == 3


class TestCache:
    def test_cache_hit_counted(self, zones):
        resolver = StubResolver(zones, clock=Clock())
        resolver.resolve_a("smtp.foo.net")
        resolver.resolve_a("smtp.foo.net")
        assert resolver.cache_hits == 1
        assert resolver.queries == 1

    def test_cache_expires_with_ttl(self, zones):
        clock = Clock()
        resolver = StubResolver(zones, clock=clock)
        resolver.resolve_a("smtp.foo.net")
        clock.advance_by(3601)
        resolver.resolve_a("smtp.foo.net")
        assert resolver.queries == 2

    def test_flush_cache(self, zones):
        resolver = StubResolver(zones, clock=Clock())
        resolver.resolve_a("smtp.foo.net")
        resolver.flush_cache()
        resolver.resolve_a("smtp.foo.net")
        assert resolver.queries == 2

    def test_cache_without_clock_never_expires(self, zones):
        resolver = StubResolver(zones)
        resolver.resolve_a("smtp.foo.net")
        resolver.resolve_a("smtp.foo.net")
        assert resolver.queries == 1


class TestFailureInjection:
    def test_broken_zone_servfails(self, zones):
        resolver = StubResolver(zones)
        resolver.break_zone("foo.net")
        with pytest.raises(ServFail):
            resolver.resolve_a("smtp.foo.net")
        with pytest.raises(ServFail):
            resolver.resolve_mx("foo.net")

    def test_repair_zone(self, zones):
        resolver = StubResolver(zones)
        resolver.break_zone("foo.net")
        resolver.repair_zone("foo.net")
        assert resolver.resolve_address("smtp.foo.net") == addr("1.2.3.4")

    def test_cached_answers_survive_outage(self, zones):
        resolver = StubResolver(zones, clock=Clock())
        resolver.resolve_a("smtp.foo.net")
        resolver.break_zone("foo.net")
        # Cached entry still served; only fresh queries fail.
        assert resolver.resolve_a("smtp.foo.net")
