"""Simulated DNS: records, zones, resolver, MX handling and nolisting."""

from .mxutil import MailExchanger, implicit_mx, resolve_exchangers, sort_mx
from .nolisting import (
    MailDomainSetup,
    setup_misconfigured,
    setup_multi_mx,
    setup_nolisting,
    setup_single_mx,
)
from .records import (
    ARecord,
    DNSRecordError,
    MXRecord,
    RecordType,
    TXTRecord,
    normalize_name,
)
from .resolver import (
    DNSError,
    DNSTimeout,
    MXAnswer,
    NXDomain,
    ServFail,
    StubResolver,
)
from .spf import (
    SPFEvaluator,
    SPFMechanism,
    SPFRecord,
    SPFResult,
    SPFSyntaxError,
    parse_spf,
    publish_spf,
)
from .zone import Zone, ZoneStore

__all__ = [
    "ARecord",
    "DNSError",
    "DNSRecordError",
    "DNSTimeout",
    "MailDomainSetup",
    "MailExchanger",
    "MXAnswer",
    "MXRecord",
    "NXDomain",
    "RecordType",
    "SPFEvaluator",
    "SPFMechanism",
    "SPFRecord",
    "SPFResult",
    "SPFSyntaxError",
    "parse_spf",
    "publish_spf",
    "ServFail",
    "StubResolver",
    "TXTRecord",
    "Zone",
    "ZoneStore",
    "implicit_mx",
    "normalize_name",
    "resolve_exchangers",
    "setup_misconfigured",
    "setup_multi_mx",
    "setup_nolisting",
    "setup_single_mx",
    "sort_mx",
]
