"""Unit tests for the RFC-compliant SMTP client's delivery flow."""

import pytest

from repro.dns.nolisting import setup_multi_mx, setup_nolisting, setup_single_mx
from repro.dns.resolver import StubResolver
from repro.dns.zone import ZoneStore
from repro.net.address import IPv4Address, pool_for
from repro.net.network import VirtualInternet
from repro.sim.clock import Clock
from repro.smtp import replies
from repro.smtp.client import AttemptOutcome, SMTPClient
from repro.smtp.message import Message
from repro.smtp.server import ConnectionPolicy, PolicyDecision, SMTPServer

SOURCE = IPv4Address.parse("203.0.113.10")


@pytest.fixture
def world():
    internet = VirtualInternet()
    zones = ZoneStore()
    pool = pool_for("192.0.2.0/24")
    clock = Clock()
    server = SMTPServer(hostname="smtp.foo.net", clock=clock)
    return internet, zones, pool, clock, server


def make_client(internet, zones):
    return SMTPClient(
        internet=internet,
        resolver=StubResolver(zones),
        source_address=SOURCE,
        helo_name="mta.sender.example",
    )


def make_message(recipient="user@foo.net"):
    return Message(sender="alice@sender.example", recipients=[recipient])


class TestDelivery:
    def test_delivers_to_single_mx(self, world):
        internet, zones, pool, _, server = world
        setup_single_mx(internet, zones, pool, "foo.net", server.session_factory)
        client = make_client(internet, zones)
        result = client.send(make_message(), "user@foo.net")
        assert result.outcome is AttemptOutcome.DELIVERED
        assert server.stats.messages_accepted == 1
        assert result.exchanger.hostname == "smtp.foo.net"

    def test_walks_past_dead_primary(self, world):
        internet, zones, pool, _, server = world
        setup_nolisting(internet, zones, pool, "foo.net", server.session_factory)
        client = make_client(internet, zones)
        result = client.send(make_message(), "user@foo.net")
        assert result.outcome is AttemptOutcome.DELIVERED
        # Delivered via the secondary, having logged the refused primary.
        assert result.exchanger.hostname == "smtp1.foo.net"
        assert any("ConnectionRefused" in line for line in result.attempts_log)

    def test_no_route_when_all_mx_dead(self, world):
        internet, zones, pool, _, server = world
        setup = setup_multi_mx(
            internet, zones, pool, "foo.net", server.session_factory, count=2
        )
        for host in setup.hosts:
            host.close_port(25)
        client = make_client(internet, zones)
        result = client.send(make_message(), "user@foo.net")
        assert result.outcome is AttemptOutcome.NO_ROUTE
        assert result.should_retry

    def test_dns_failure_for_unknown_domain(self, world):
        internet, zones, _, _, _ = world
        client = make_client(internet, zones)
        result = client.send(make_message("user@ghost.net"), "user@ghost.net")
        assert result.outcome is AttemptOutcome.DNS_FAILURE

    def test_implicit_mx_fallback(self, world):
        internet, zones, pool, clock, server = world
        # Domain with no MX but an A record on the apex: RFC 5321 implicit MX.
        zone = zones.create("bare.net")
        address = pool.allocate()
        zone.add_a("bare.net", address)
        from repro.net.host import VirtualHost

        host = VirtualHost("bare.net", [address])
        host.listen(25, server.session_factory)
        internet.register(host)
        client = make_client(internet, zones)
        result = client.send(make_message("user@bare.net"), "user@bare.net")
        assert result.outcome is AttemptOutcome.DELIVERED


class TestRejections:
    def test_greylist_deferral_reported_transient(self, world):
        internet, zones, pool, _, _ = world

        class Grey(ConnectionPolicy):
            def on_rcpt_to(self, client, sender, recipient):
                return PolicyDecision.reject(replies.greylisted(300))

        server = SMTPServer(hostname="smtp.foo.net", clock=Clock(), policy=Grey())
        setup_single_mx(internet, zones, pool, "foo.net", server.session_factory)
        client = make_client(internet, zones)
        result = client.send(make_message(), "user@foo.net")
        assert result.outcome is AttemptOutcome.DEFERRED
        assert result.should_retry
        assert result.reply.code == 450

    def test_permanent_rejection_bounces(self, world):
        internet, zones, pool, _, _ = world
        server = SMTPServer(
            hostname="smtp.foo.net",
            clock=Clock(),
            valid_recipients=set(),  # everyone unknown -> 550
        )
        setup_single_mx(internet, zones, pool, "foo.net", server.session_factory)
        client = make_client(internet, zones)
        result = client.send(make_message(), "user@foo.net")
        assert result.outcome is AttemptOutcome.BOUNCED
        assert not result.should_retry

    def test_smtp_rejection_does_not_walk_to_secondary(self, world):
        # A server that answered speaks for the domain: 4yz/5yz must not
        # cause a fallback to lower-priority exchangers.
        internet, zones, pool, _, _ = world

        class Defer(ConnectionPolicy):
            def on_rcpt_to(self, client, sender, recipient):
                return PolicyDecision.reject(replies.greylisted(300))

        primary = SMTPServer(hostname="smtp.foo.net", clock=Clock(), policy=Defer())
        secondary = SMTPServer(hostname="smtp1.foo.net", clock=Clock())
        zone = zones.create("foo.net")
        a1, a2 = pool.allocate(), pool.allocate()
        zone.add_a("smtp.foo.net", a1)
        zone.add_a("smtp1.foo.net", a2)
        zone.add_mx(0, "smtp.foo.net")
        zone.add_mx(15, "smtp1.foo.net")
        from repro.net.host import VirtualHost

        h1 = VirtualHost("smtp.foo.net", [a1])
        h1.listen(25, primary.session_factory)
        h2 = VirtualHost("smtp1.foo.net", [a2])
        h2.listen(25, secondary.session_factory)
        internet.register(h1)
        internet.register(h2)

        client = make_client(internet, zones)
        result = client.send(make_message(), "user@foo.net")
        assert result.outcome is AttemptOutcome.DEFERRED
        assert secondary.stats.connections == 0
