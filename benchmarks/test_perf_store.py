"""Microbenchmarks of the triplet-store backends at deployment scale.

A real greylisting deployment holds on the order of a million live
triplets (the paper's §VI database-growth numbers make spammers the ones
who decide that size).  These benches load one million triplets into each
backend and measure the two operations a serving policy performs:

* **Lookups** — point reads on the hot path of every RCPT decision.  The
  SQLite backend carries a hard floor of 100,000 lookups/sec: below that
  a single policy daemon could not keep up with a burst worth greylisting.
* **Expiry sweep** — the periodic Postgrey ``--max-age`` cleanup, with
  roughly half the database stale.  SQLite serves this from the
  ``(passed, last_seen)`` index; the dict backends pay a full scan.

Backends run volatile here (SQLite ``:memory:``, journal on an in-memory
buffer): the statements and scan/expire code paths are identical to the
file-backed ones — covered for durability by the unit and equivalence
suites — and keeping the bench off the filesystem keeps the 1M-row
setup smoke-viable and the numbers free of container I/O noise.

The shared-memory table is fixed-capacity by design (it spills rather
than grows), so this bench sizes it explicitly for the 1M load at a
~25% load factor — the same ``--shm-capacity`` decision a deployment
makes — keeping bounded probing spill-free at this scale.

Both join the smoke-bench regression gate once baselined in BENCH_0.json.
"""

import pytest

from repro.greylist.backends import BACKEND_NAMES, create_backend
from repro.greylist.shm import SharedMemoryBackend
from repro.greylist.store import DAY, TripletEntry
from repro.greylist.triplet import Triplet
from repro.net.address import IPv4Address
from repro.sim.rng import RandomStream

from _util import emit

NUM_TRIPLETS = 1_000_000
NUM_LOOKUPS = 20_000
#: Hard floor on SQLite point-read throughput at 1M triplets.
SQLITE_LOOKUP_FLOOR = 100_000

RETRY_WINDOW = 2 * DAY
WHITELIST_LIFETIME = 35 * DAY


@pytest.fixture(scope="module")
def entries_1m():
    """One million triplet entries, ~half confirmed, ages spread out.

    ``last_seen`` spans [0, 35 days); sweeping at ``now = 37 days`` with
    the Postgrey windows expires every unconfirmed entry older than 2
    days and every confirmed one older than 35 — roughly half the table.
    """
    rng = RandomStream(23, "store-bench")
    entries = []
    for i in range(NUM_TRIPLETS):
        passed = i % 2 == 0
        last_seen = rng.uniform(0.0, 35 * DAY)
        entries.append(
            TripletEntry(
                triplet=Triplet(
                    IPv4Address((10 << 24) | i),
                    f"s{i % 4096}@x{i % 997}.example",
                    f"r{i % 64}@victim.example",
                ),
                first_seen=max(0.0, last_seen - 600.0),
                last_seen=last_seen,
                attempts=2 if passed else 1,
                passed=passed,
                passed_at=last_seen if passed else None,
            )
        )
    return entries


#: Slots in the shared-memory table for the 1M load (~25% load factor:
#: bounded 64-slot probing stays spill-free with this much headroom).
SHM_BENCH_CAPACITY = 4 * 1024 * 1024


def _loaded_backend(name, entries):
    if name == "shm":
        backend = SharedMemoryBackend(capacity=SHM_BENCH_CAPACITY)
    else:
        backend = create_backend(name, path=None)  # volatile: see module doc
    backend.bulk_load(entries)
    backend.flush()
    return backend


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_perf_store_lookup(benchmark, name, entries_1m):
    """Point reads against 1M stored triplets."""
    backend = _loaded_backend(name, entries_1m)
    probes = [
        entries_1m[i].triplet
        for i in range(0, NUM_TRIPLETS, NUM_TRIPLETS // NUM_LOOKUPS)
    ][:NUM_LOOKUPS]

    def lookups():
        get = backend.get
        hits = 0
        for probe in probes:
            if get(probe) is not None:
                hits += 1
        return hits

    hits = benchmark.pedantic(lookups, rounds=3, iterations=1)
    assert hits == NUM_LOOKUPS
    assert len(backend) == NUM_TRIPLETS

    per_sec = NUM_LOOKUPS / benchmark.stats.stats.min
    benchmark.extra_info["lookups_per_sec"] = round(per_sec)
    emit(
        f"Triplet lookups ({name})",
        f"{per_sec:,.0f} lookups/sec against {NUM_TRIPLETS:,} triplets",
    )
    if name == "sqlite":
        assert per_sec >= SQLITE_LOOKUP_FLOOR
    backend.close()


@pytest.mark.parametrize("name", BACKEND_NAMES)
def test_perf_store_sweep(benchmark, name, entries_1m):
    """One full expiry sweep over 1M triplets, ~half of them stale."""
    backend = _loaded_backend(name, entries_1m)
    now = 37 * DAY

    def sweep():
        return backend.expire(now, RETRY_WINDOW, WHITELIST_LIFETIME)

    unconfirmed, confirmed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    removed = unconfirmed + confirmed
    assert removed > NUM_TRIPLETS // 4          # the sweep had real work
    assert len(backend) == NUM_TRIPLETS - removed

    seconds = benchmark.stats.stats.min
    benchmark.extra_info["entries_swept"] = removed
    benchmark.extra_info["entries_per_sec"] = round(NUM_TRIPLETS / seconds)
    emit(
        f"Expiry sweep ({name})",
        f"swept {NUM_TRIPLETS:,} triplets in {seconds:.3f}s "
        f"({removed:,} expired: {unconfirmed:,} unconfirmed, "
        f"{confirmed:,} confirmed)",
    )
    backend.close()
