"""SPF as an SMTP pre-acceptance policy.

Plugs the :class:`~repro.dns.spf.SPFEvaluator` into the server policy
chain: a hard SPF ``fail`` rejects at MAIL FROM time; ``softfail`` can be
configured to reject or merely annotate.  Stacks under
:class:`~repro.smtp.server.CompositePolicy` with DNSBL and greylisting —
the full pre-acceptance battery of a 2015 mail server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..dns.spf import SPFEvaluator, SPFResult
from ..net.address import IPv4Address
from .message import domain_of
from .replies import Reply
from .server import ConnectionPolicy, PolicyDecision


@dataclass
class SPFEvent:
    """One SPF evaluation, as logged by the policy."""

    client: IPv4Address
    sender: str
    result: SPFResult


class SPFPolicy(ConnectionPolicy):
    """Rejects senders whose domain's SPF policy fails the client IP."""

    def __init__(
        self,
        evaluator: SPFEvaluator,
        reject_softfail: bool = False,
    ) -> None:
        self.evaluator = evaluator
        self.reject_softfail = reject_softfail
        self.events: List[SPFEvent] = []
        self.rejections = 0

    def on_mail_from(self, client: IPv4Address, sender: str) -> PolicyDecision:
        result = self.evaluator.check(client, domain_of(sender))
        self.events.append(SPFEvent(client=client, sender=sender, result=result))
        reject = result is SPFResult.FAIL or (
            self.reject_softfail and result is SPFResult.SOFTFAIL
        )
        if reject:
            self.rejections += 1
            return PolicyDecision.reject(
                Reply(
                    550,
                    f"5.7.23 SPF validation failed for {sender} "
                    f"from [{client}]",
                )
            )
        return PolicyDecision.ok()

    def result_counts(self) -> Dict[SPFResult, int]:
        counts: Dict[SPFResult, int] = {}
        for event in self.events:
            counts[event.result] = counts.get(event.result, 0) + 1
        return counts
