"""Equivalence-class batching primitives.

The internet-scale experiments spend almost all of their time re-deriving
outcomes that are identical across huge swaths of the population: two
domains with the same MX topology, the same liveness pattern and the same
fault-window signature classify identically; two SMTP sessions between the
same bot dialect and the same server policy in the same greylist phase
produce the same transcript.  This module provides the two generic
building blocks the batched engines are made of:

* :class:`EquivalenceClassIndex` — groups work units by an
  outcome-determining key so one representative is evaluated per class and
  its result multiplied by the class cardinality;
* :class:`SessionOutcomeCache` — a bounded LRU memo of
  :class:`SessionPlaybook` entries (interned SMTP transcripts keyed by bot
  dialect, server-policy fingerprint, threshold bucket and retry phase).

Both are deterministic by construction: they hold no randomness, and the
batched engines built on top of them only ever feed them keys derived from
the same ``seed:label`` streams the per-object paths consume — which is
what makes batched and unbatched runs bit-for-bit identical.

>>> index = EquivalenceClassIndex()
>>> for name in ("a", "b", "c"):
...     index.add(("single-mx", True), name)
>>> index.add(("multi-mx", False), "d")
>>> index.num_classes, index.num_members
(2, 4)
>>> index.cardinality(("single-mx", True))
3
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, Iterator, List, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
M = TypeVar("M")
V = TypeVar("V")

#: Cache keys are flat tuples of hashables: (dialect, policy fingerprint,
#: threshold bucket, retry/phase bucket, ...).
PlaybookKey = Tuple[Hashable, ...]


@dataclass(slots=True)
class BatchCounters:
    """Work accounting of one batched run (how much collapsing happened)."""

    members: int = 0
    classes: int = 0
    representative_runs: int = 0

    @property
    def collapse_factor(self) -> float:
        """Members handled per representative actually evaluated."""
        if self.representative_runs == 0:
            return 0.0
        return self.members / self.representative_runs


class EquivalenceClassIndex(Generic[K, M]):
    """Groups work units by an outcome-determining key.

    Insertion order of first appearance is preserved, so iterating the
    classes is deterministic regardless of how members hash.
    """

    def __init__(self) -> None:
        self._classes: "OrderedDict[K, List[M]]" = OrderedDict()
        self._num_members = 0

    def add(self, key: K, member: M) -> None:
        """File ``member`` under ``key``."""
        bucket = self._classes.get(key)
        if bucket is None:
            bucket = []
            self._classes[key] = bucket
        bucket.append(member)
        self._num_members += 1

    @property
    def num_classes(self) -> int:
        return len(self._classes)

    @property
    def num_members(self) -> int:
        return self._num_members

    def cardinality(self, key: K) -> int:
        """Number of members filed under ``key`` (0 when absent)."""
        bucket = self._classes.get(key)
        return len(bucket) if bucket is not None else 0

    def members(self, key: K) -> List[M]:
        """The members of one class, in insertion order."""
        return list(self._classes.get(key, []))

    def classes(self) -> Iterator[Tuple[K, List[M]]]:
        """Iterate ``(key, members)`` in first-appearance order."""
        return iter(self._classes.items())

    def map_representatives(self, fn: Callable[[K], V]) -> Dict[K, V]:
        """Evaluate ``fn`` once per class key.

        This is the batching core: the caller's ``fn`` drives the *real*
        per-object machinery on one representative, and the result is
        shared by every member of the class.
        """
        return {key: fn(key) for key in self._classes}

    def __len__(self) -> int:
        return self.num_classes

    def __contains__(self, key: object) -> bool:
        return key in self._classes

    def __repr__(self) -> str:
        return (
            f"EquivalenceClassIndex(classes={self.num_classes}, "
            f"members={self.num_members})"
        )


@dataclass(frozen=True, slots=True)
class SessionPlaybook:
    """The memoized outcome of one SMTP session class.

    ``outcome`` is the bot-side attempt outcome (the value of
    ``BotAttemptOutcome``), ``reply_code`` the decisive SMTP reply, and
    ``transcript`` the replayable exchange.  Transcript lines are interned
    (:func:`sys.intern`) so thousands of cached classes share the same
    string objects.
    """

    outcome: str
    reply_code: int
    transcript: Tuple[str, ...] = ()

    @classmethod
    def make(
        cls,
        outcome: str,
        reply_code: int,
        transcript: Tuple[str, ...] = (),
    ) -> "SessionPlaybook":
        """Build a playbook with interned transcript lines."""
        return cls(
            outcome=outcome,
            reply_code=reply_code,
            transcript=tuple(sys.intern(line) for line in transcript),
        )

    @property
    def delivered(self) -> bool:
        return self.outcome == "delivered"

    @property
    def deferred(self) -> bool:
        return self.outcome == "deferred"

    @property
    def rejected(self) -> bool:
        return self.outcome == "rejected"


class SessionOutcomeCache:
    """Bounded LRU memo of :class:`SessionPlaybook` entries.

    Keys are ``(bot dialect profile, server policy fingerprint, greylist
    threshold bucket, retry-schedule/phase bucket)`` tuples; values are
    playbooks produced by driving one *real* session per class.  Hit, miss
    and eviction counters are exposed for the engines (and their tests).

    Memoization is sound exactly because every component of the key is an
    outcome determinant: two sessions agreeing on all of them are driven
    through identical state machines with identical inputs, so caching the
    first transcript loses nothing.  Anything time- or state-dependent
    (the greylist phase, a DNSBL listing) must be folded into the key by
    the caller — never guessed by the cache.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[PlaybookKey, SessionPlaybook]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(
        self, key: PlaybookKey, builder: Callable[[], SessionPlaybook]
    ) -> SessionPlaybook:
        """Return the cached playbook for ``key``, building it on a miss."""
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        playbook = builder()
        self._entries[key] = playbook
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return playbook

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"SessionOutcomeCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
