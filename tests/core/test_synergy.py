"""Tests for the greylisting x blacklisting synergy experiment."""

import pytest

from repro.botnet.families import CUTWAIL
from repro.core.synergy import (
    run_synergy_comparison,
    run_synergy_experiment,
    sweep_greylist_delay,
    sweep_listing_speed,
)


class TestThreeWayComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return run_synergy_comparison(num_messages=10)

    def test_greylist_alone_fails_against_kelihos(self, results):
        greylist = results[0]
        assert greylist.configuration == "greylist"
        assert not greylist.blocked

    def test_dnsbl_alone_fails_against_first_burst(self, results):
        dnsbl = results[1]
        assert dnsbl.configuration == "dnsbl"
        # The first attempts land before the blacklist reacts.
        assert not dnsbl.blocked

    def test_stacked_defenses_block(self, results):
        both = results[2]
        assert both.configuration == "both"
        assert both.blocked
        assert both.dnsbl_rejections > 0

    def test_listing_happened_in_all_runs(self, results):
        for result in results:
            assert result.listed_after is not None


class TestListingSpeedSweep:
    def test_delivery_monotone_in_listing_speed(self):
        results = sweep_listing_speed(
            rates_per_hour=(2.0, 60.0, 600.0), num_messages=10
        )
        rates = [r.delivery_rate for r in results]
        assert rates[0] >= rates[-1]
        # Slow ecosystem: spam gets through; fast ecosystem: blocked.
        assert results[0].delivery_rate > 0.5
        assert results[-1].delivery_rate == 0.0

    def test_faster_reporting_lists_sooner(self):
        results = sweep_listing_speed(
            rates_per_hour=(2.0, 600.0), num_messages=5
        )
        assert results[1].listed_after < results[0].listed_after


class TestGreylistDelaySweep:
    def test_long_threshold_buys_blacklist_time(self):
        results = sweep_greylist_delay(
            delays=(300.0, 21600.0), reports_per_hour=60.0, num_messages=10
        )
        short, long = results
        # Short threshold: the ~300-600 s Kelihos retry beats the listing.
        assert not short.blocked
        # Six-hour threshold: by the time a retry could pass the greylist,
        # the sender is long listed.
        assert long.blocked


class TestConfigValidation:
    def test_unknown_configuration(self):
        with pytest.raises(ValueError):
            run_synergy_experiment("bogus")

    def test_fire_and_forget_blocked_by_greylist_alone(self):
        result = run_synergy_experiment(
            "greylist", family=CUTWAIL, num_messages=5
        )
        assert result.blocked
        assert result.dnsbl_rejections == 0

    def test_local_reporting_accelerates_listing(self):
        lazy = run_synergy_experiment(
            "both",
            reports_per_hour=1.0,
            detection_threshold=5,
            local_reporting=False,
            num_messages=10,
            horizon=50000.0,
        )
        eager = run_synergy_experiment(
            "both",
            reports_per_hour=1.0,
            detection_threshold=5,
            local_reporting=True,
            num_messages=10,
            horizon=50000.0,
        )
        # With local sightings counting, the 10-recipient burst alone trips
        # the threshold immediately.
        assert eager.listed_after is not None
        assert lazy.listed_after is None or eager.listed_after < lazy.listed_after
