"""Unit tests for the spam-bot engine against live and defended servers."""

from repro.botnet.behavior import MXBehavior
from repro.botnet.bot import BotAttemptOutcome, SpamBot
from repro.botnet.retry import EmpiricalRetryModel, FireAndForget, RetryMode
from repro.core.testbed import Defense, Testbed, TestbedConfig
from repro.sim.rng import RandomStream
from repro.smtp.message import Message


def make_bot(testbed, behavior, retry_model=None, walks=True, seed=1):
    return SpamBot(
        internet=testbed.internet,
        resolver=testbed.resolver,
        scheduler=testbed.scheduler,
        source_address=testbed.allocate_bot_address(),
        mx_behavior=behavior,
        retry_model=retry_model,
        rng=RandomStream(seed, "test-bot"),
        walks_mx_on_failure=walks,
    )


def spam(recipient="victim1@victim.example"):
    return Message(
        sender="spam@botnet.example",
        recipients=[recipient],
        campaign_id="test-campaign",
    )


class TestAgainstOpenServer:
    def test_delivers_immediately(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        bot = make_bot(testbed, MXBehavior.PRIMARY_ONLY)
        bot.assign(spam())
        testbed.run(horizon=60)
        assert len(bot.delivered_tasks) == 1
        assert testbed.server.stats.messages_accepted == 1
        task = bot.tasks[0]
        assert task.attempts[0].outcome is BotAttemptOutcome.DELIVERED
        assert task.delivery_delay == 0.0

    def test_one_task_per_recipient(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        bot = make_bot(testbed, MXBehavior.PRIMARY_ONLY)
        message = Message(
            sender="spam@botnet.example",
            recipients=["a@victim.example", "b@victim.example"],
        )
        bot.assign(message)
        testbed.run(horizon=60)
        assert len(bot.tasks) == 2
        assert all(t.delivered for t in bot.tasks)


class TestAgainstNolisting:
    def test_primary_only_bot_blocked(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NOLISTING))
        bot = make_bot(testbed, MXBehavior.PRIMARY_ONLY, walks=False)
        bot.assign(spam())
        testbed.run(horizon=3600)
        assert bot.delivered_tasks == []
        assert bot.abandoned_tasks == bot.tasks
        assert testbed.server.stats.messages_accepted == 0
        outcome = bot.tasks[0].attempts[0].outcome
        assert outcome is BotAttemptOutcome.CONNECTION_FAILED

    def test_secondary_only_bot_passes(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NOLISTING))
        bot = make_bot(testbed, MXBehavior.SECONDARY_ONLY, walks=False)
        bot.assign(spam())
        testbed.run(horizon=3600)
        assert len(bot.delivered_tasks) == 1
        # It never even touched the primary.
        targets = {a.target for a in bot.all_attempts()}
        assert targets == {"smtp1.victim.example"}

    def test_rfc_compliant_bot_passes_via_secondary(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NOLISTING))
        bot = make_bot(testbed, MXBehavior.RFC_COMPLIANT, walks=True)
        bot.assign(spam())
        testbed.run(horizon=3600)
        assert len(bot.delivered_tasks) == 1
        targets = [a.target for a in bot.tasks[0].attempts]
        assert targets == ["smtp.victim.example", "smtp1.victim.example"]

    def test_primary_only_retrier_still_blocked(self):
        # Retrying does not help when you keep knocking on a closed port.
        testbed = Testbed(TestbedConfig(defense=Defense.NOLISTING))
        model = EmpiricalRetryModel(
            modes=[RetryMode(10.0, 20.0, 1.0)], min_delay=10, max_attempts=5
        )
        bot = make_bot(
            testbed, MXBehavior.PRIMARY_ONLY, retry_model=model, walks=False
        )
        bot.assign(spam())
        testbed.run(horizon=3600)
        assert bot.delivered_tasks == []
        assert bot.tasks[0].attempt_count == 5


class TestAgainstGreylisting:
    def _greylisted(self, delay=300.0):
        return Testbed(
            TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=delay)
        )

    def test_fire_and_forget_blocked(self):
        testbed = self._greylisted()
        bot = make_bot(testbed, MXBehavior.PRIMARY_ONLY, FireAndForget())
        bot.assign(spam())
        testbed.run(horizon=86400)
        assert bot.delivered_tasks == []
        assert bot.tasks[0].attempts[0].outcome is BotAttemptOutcome.DEFERRED
        assert bot.tasks[0].attempts[0].reply_code == 450

    def test_retrier_passes_after_threshold(self):
        testbed = self._greylisted(delay=300.0)
        model = EmpiricalRetryModel(
            modes=[RetryMode(300.0, 600.0, 1.0)],
            min_delay=300,
            max_attempts=10,
            escalate=False,
        )
        bot = make_bot(testbed, MXBehavior.PRIMARY_ONLY, model)
        bot.assign(spam())
        testbed.run(horizon=86400)
        assert len(bot.delivered_tasks) == 1
        task = bot.tasks[0]
        assert task.attempt_count == 2
        assert 300.0 <= task.delivery_delay <= 600.0

    def test_retrier_blocked_by_huge_threshold_until_late(self):
        testbed = self._greylisted(delay=21600.0)
        model = EmpiricalRetryModel(
            modes=[RetryMode(5000.0, 6000.0, 1.0)],
            min_delay=300,
            max_attempts=10,
            escalate=False,
        )
        bot = make_bot(testbed, MXBehavior.PRIMARY_ONLY, model)
        bot.assign(spam())
        testbed.run(horizon=10 ** 6)
        task = bot.tasks[0]
        assert task.delivered
        # Needs enough 5-6 ks retries to accumulate 21600 s of triplet age.
        assert task.delivery_delay >= 21600.0
        assert task.attempt_count >= 5

    def test_permanent_rejection_abandons(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        testbed.server.valid_recipients = set()  # all recipients unknown
        bot = make_bot(testbed, MXBehavior.PRIMARY_ONLY)
        bot.assign(spam())
        testbed.run(horizon=60)
        assert bot.tasks[0].abandoned
        assert bot.tasks[0].attempts[0].outcome is BotAttemptOutcome.REJECTED


class TestDNSFailure:
    def test_unresolvable_domain_dns_failed(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        bot = make_bot(testbed, MXBehavior.PRIMARY_ONLY)
        bot.assign(spam("victim@nonexistent.example"))
        testbed.run(horizon=60)
        task = bot.tasks[0]
        assert task.attempts[0].outcome is BotAttemptOutcome.DNS_FAILED
        assert task.abandoned
