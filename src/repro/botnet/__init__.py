"""Botnet substrate: MX-behaviour taxonomy, bot engine and family models."""

from .behavior import MXBehavior, defeats_nolisting, select_targets
from .bot import BotAttempt, BotAttemptOutcome, BotTask, SpamBot
from .campaign import CommandAndControl, SpamCampaign, make_recipient_list
from .families import (
    BOTNET_FRACTION_OF_GLOBAL_SPAM,
    CUTWAIL,
    DARKMAILER,
    DARKMAILER_V3,
    FAMILIES,
    FAMILY_BY_NAME,
    KELIHOS,
    TOTAL_BOTNET_SPAM_SHARE,
    TOTAL_GLOBAL_SPAM_SHARE,
    FamilyProfile,
    global_spam_share,
)
from .retry import (
    KELIHOS_MODES,
    BotRetryModel,
    EmpiricalRetryModel,
    FireAndForget,
    RetryMode,
    kelihos_retry_model,
)
from .samples import TOTAL_SAMPLE_COUNT, Sample, collect_samples, samples_of

__all__ = [
    "BOTNET_FRACTION_OF_GLOBAL_SPAM",
    "BotAttempt",
    "BotAttemptOutcome",
    "BotRetryModel",
    "BotTask",
    "CUTWAIL",
    "CommandAndControl",
    "DARKMAILER",
    "DARKMAILER_V3",
    "EmpiricalRetryModel",
    "FAMILIES",
    "FAMILY_BY_NAME",
    "FamilyProfile",
    "FireAndForget",
    "KELIHOS",
    "KELIHOS_MODES",
    "MXBehavior",
    "RetryMode",
    "Sample",
    "SpamBot",
    "SpamCampaign",
    "TOTAL_BOTNET_SPAM_SHARE",
    "TOTAL_GLOBAL_SPAM_SHARE",
    "TOTAL_SAMPLE_COUNT",
    "collect_samples",
    "defeats_nolisting",
    "global_spam_share",
    "kelihos_retry_model",
    "make_recipient_list",
    "samples_of",
    "select_targets",
]
