"""Content-based (post-acceptance) filtering: naive Bayes + SMTP policy."""

from .bayes import ClassifierStats, NaiveBayesFilter, tokenize
from .corpus import (
    Corpus,
    build_corpus,
    evaluate,
    generate_ham,
    generate_spam,
)
from .policy import ContentFilterPolicy, FilterEvent

__all__ = [
    "ClassifierStats",
    "ContentFilterPolicy",
    "Corpus",
    "FilterEvent",
    "NaiveBayesFilter",
    "build_corpus",
    "evaluate",
    "generate_ham",
    "generate_spam",
    "tokenize",
]
