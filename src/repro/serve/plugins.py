"""Pluggable policy chain for the serving daemon (iRedAPD's shape).

iRedAPD answers each Postfix policy request by walking an ordered list
of plugins (``wblist``, ``throttle``, ``greylisting``, ...); the first
plugin returning anything other than ``DUNNO`` decides, and a chain
that stays silent ends in ``DUNNO`` (Postfix then applies its own
restrictions).  This module reproduces that architecture on top of the
*simulator's* policy core: :class:`GreylistingPlugin` wraps the very
:class:`~repro.greylist.policy.GreylistPolicy` the experiments run, so
the served and simulated paths share one decision function (the
equivalence suite replays identical bot traffic through both and
asserts identical :class:`~repro.greylist.policy.GreylistEvent`
streams and triplet-store state).

Hot-path caching: whitelist/wblist matching scans CIDR lists and HELO
suffixes per request.  Those verdicts are *stable for the lifetime of a
serving process* (the static lists never change while the daemon runs),
so :class:`DecisionCache` memoizes them in an LRU keyed by the owning
policy's fingerprint plus the (client, sender) pair.  Greylisting
decisions are deliberately never cached — they depend on triplet state
and virtual time — and a cached whitelist verdict still logs its
``GreylistEvent``, so caching is invisible in the event stream.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from ..greylist.policy import GreylistPolicy
from ..greylist.whitelist import Whitelist
from ..net.address import IPv4Address
from ..sim.clock import Clock
from .protocol import (
    ACTION_DEFER_IF_PERMIT,
    ACTION_DUNNO,
    ACTION_OK,
    ACTION_REJECT,
    SMTPD_ACCESS_POLICY,
    PolicyRequest,
)

#: Default size of the serving decision LRU (entries, not bytes).
DECISION_CACHE_SIZE = 65536


class DecisionCache:
    """LRU of stable per-(client, sender) verdicts.

    Keys are ``(policy fingerprint, client, sender)`` so two plugins (or
    a reconfigured plugin) can share one cache without ever serving each
    other's verdicts.  Only verdicts that cannot change while the daemon
    runs may be stored here — the caller guarantees that.
    """

    __slots__ = ("maxsize", "hits", "misses", "_entries")

    def __init__(self, maxsize: int = DECISION_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("cache size must be >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple[Hashable, ...], object]" = (
            OrderedDict()
        )

    def get(self, key: Tuple[Hashable, ...]) -> object:
        """Return the cached verdict or the sentinel :data:`MISS`."""
        entry = self._entries.get(key, MISS)
        if entry is MISS:
            self.misses += 1
        else:
            self.hits += 1
            self._entries.move_to_end(key)
        return entry

    def put(self, key: Tuple[Hashable, ...], verdict: object) -> None:
        entries = self._entries
        entries[key] = verdict
        entries.move_to_end(key)
        if len(entries) > self.maxsize:
            entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


#: Cache-miss sentinel (``None`` is a legal verdict).
MISS = object()


class CachedWhitelist:
    """Memoizing façade over a :class:`Whitelist`.

    Same ``matches`` interface the greylist policy calls, but the
    (client, sender) verdict is served from the :class:`DecisionCache`
    after the first scan.  The whitelist's ``generation`` counter is
    part of every cache key, so a live update (an operator whitelisting
    a provider mid-flight, another worker merging entries) immediately
    stops stale verdicts from matching — superseded keys age out of the
    LRU rather than being swept.
    """

    __slots__ = ("inner", "cache", "_fingerprint")

    def __init__(
        self,
        inner: Whitelist,
        cache: DecisionCache,
        fingerprint: Tuple[Hashable, ...],
    ) -> None:
        self.inner = inner
        self.cache = cache
        self._fingerprint = ("whitelist",) + fingerprint

    def matches(
        self,
        client: IPv4Address,
        sender: str,
        helo_name: Optional[str] = None,
    ) -> bool:
        if helo_name is not None:
            # HELO-qualified probes are not on the serving hot path;
            # bypass the cache rather than key on a third dimension.
            return self.inner.matches(client, sender, helo_name)
        key = self._fingerprint + (
            self.inner.generation, client.value, sender,
        )
        verdict = self.cache.get(key)
        if verdict is MISS:
            verdict = self.inner.matches(client, sender)
            self.cache.put(key, verdict)
        return bool(verdict)

    def __getattr__(self, name: str) -> object:
        # Population helpers etc. fall through to the real whitelist.
        return getattr(self.inner, name)


class PolicyPlugin:
    """One link of the serving chain.

    ``check`` returns a Postfix action string; :data:`ACTION_DUNNO`
    means "no opinion, ask the next plugin".
    """

    name = "abstract"

    def check(self, request: PolicyRequest) -> str:
        raise NotImplementedError

    def fingerprint(self) -> Tuple[Hashable, ...]:
        """Decision-function identity (cache keys, bench labels)."""
        return (self.name,)

    def flush(self) -> None:
        """Make buffered state durable (called off the hot path)."""

    def close(self) -> None:
        self.flush()


#: Memo of parsed client addresses (text -> address).  Real MTAs retry
#: from the same addresses all day; parsing dotted-quad text is ~10x a
#: dict hit.  Bounded by wholesale reset — eviction order is irrelevant
#: for a pure function's memo, and reset keeps the hot path branch-free.
_CLIENT_PARSE_CACHE: Dict[str, Optional[IPv4Address]] = {}  # repro: noqa SHM001 - pure-function memo; per-process divergence is harmless
_CLIENT_PARSE_CACHE_MAX = 65536


def _parse_client(request: PolicyRequest) -> Optional[IPv4Address]:
    text = request.client_address
    try:
        return _CLIENT_PARSE_CACHE[text]
    except KeyError:
        pass
    try:
        client: Optional[IPv4Address] = IPv4Address.parse(text)
    except ValueError:
        client = None
    if len(_CLIENT_PARSE_CACHE) >= _CLIENT_PARSE_CACHE_MAX:
        _CLIENT_PARSE_CACHE.clear()
    _CLIENT_PARSE_CACHE[text] = client
    return client


class GreylistingPlugin(PolicyPlugin):
    """The greylisting link: the simulator's policy core, served live.

    Decision mapping (iRedAPD convention): an *accepted* attempt returns
    ``DUNNO`` so later plugins may still reject; a greylisted attempt
    returns ``DEFER_IF_PERMIT`` carrying the Postgrey 450 reply text.
    Requests missing the triplet (no client/sender/recipient, or a
    non-RCPT protocol state we were not asked about) fail open with
    ``DUNNO`` — a policy daemon must degrade to "no opinion", never
    block mail on its own malfunction.
    """

    name = "greylisting"

    def __init__(
        self,
        policy: GreylistPolicy,
        cache: Optional[DecisionCache] = None,
    ) -> None:
        self.policy = policy
        self.ignored = 0
        if cache is not None and policy.whitelist is not None:
            policy.whitelist = CachedWhitelist(  # type: ignore[assignment]
                policy.whitelist, cache, self.fingerprint()
            )

    def fingerprint(self) -> Tuple[Hashable, ...]:
        return self.policy.fingerprint()

    def check(self, request: PolicyRequest) -> str:
        client = _parse_client(request)
        sender = request.sender
        recipient = request.recipient
        if client is None or not sender or not recipient:
            self.ignored += 1
            return ACTION_DUNNO
        try:
            decision = self.policy.on_rcpt_to(client, sender, recipient)
        except ValueError:
            # Unparseable envelope address: no opinion (see class doc).
            self.ignored += 1
            return ACTION_DUNNO
        if decision.accept:
            return ACTION_DUNNO
        reply = decision.reply
        assert reply is not None
        return f"{ACTION_DEFER_IF_PERMIT} {reply.code} {reply.text}"

    def flush(self) -> None:
        self.policy.store.flush()

    def close(self) -> None:
        self.policy.store.close()


class ThrottlePlugin(PolicyPlugin):
    """Per-client message-rate throttle (iRedAPD ``throttle``'s shape).

    A sliding window: more than ``max_messages`` requests from one
    client address within ``period`` seconds defers the excess with a
    4.7.1 reply.  Time comes from the shared serving clock, so replayed
    traffic throttles identically to live traffic.
    """

    name = "throttle"

    def __init__(
        self,
        clock: Clock,
        max_messages: int = 60,
        period: float = 60.0,
    ) -> None:
        if max_messages < 1:
            raise ValueError("max_messages must be >= 1")
        if period <= 0:
            raise ValueError("period must be positive")
        self.clock = clock
        self.max_messages = max_messages
        self.period = float(period)
        self.throttled = 0
        self._windows: Dict[int, Deque[float]] = {}

    def fingerprint(self) -> Tuple[Hashable, ...]:
        return (self.name, self.max_messages, self.period)

    def check(self, request: PolicyRequest) -> str:
        client = _parse_client(request)
        if client is None:
            return ACTION_DUNNO
        now = self.clock.now
        window = self._windows.get(client.value)
        if window is None:
            window = deque()
            self._windows[client.value] = window
        horizon = now - self.period
        while window and window[0] <= horizon:
            window.popleft()
        if len(window) >= self.max_messages:
            self.throttled += 1
            return (
                f"{ACTION_DEFER_IF_PERMIT} 450 4.7.1 Rate limit of "
                f"{self.max_messages} messages per {self.period:.0f}s "
                "exceeded, retry later"
            )
        window.append(now)
        return ACTION_DUNNO


class WBListPlugin(PolicyPlugin):
    """White/blacklist link (iRedAPD ``amavisd_wblist``'s shape).

    A whitelist hit answers ``OK`` (skip the rest of the chain — the
    greylisting plugin never sees the request); a blacklist hit rejects
    outright.  Both lists are static for the daemon's lifetime, so the
    verdict joins the :class:`DecisionCache`.
    """

    name = "wblist"

    def __init__(
        self,
        whitelist: Optional[Whitelist] = None,
        blacklist: Optional[Whitelist] = None,
        cache: Optional[DecisionCache] = None,
    ) -> None:
        self.whitelist = whitelist if whitelist is not None else Whitelist()
        self.blacklist = blacklist if blacklist is not None else Whitelist()
        self.cache = cache

    def fingerprint(self) -> Tuple[Hashable, ...]:
        return (self.name,)

    def _verdict(self, client: IPv4Address, sender: str) -> str:
        if self.blacklist.matches(client, sender):
            return f"{ACTION_REJECT} 554 5.7.1 Client or sender blacklisted"
        if self.whitelist.matches(client, sender):
            return ACTION_OK
        return ACTION_DUNNO

    def check(self, request: PolicyRequest) -> str:
        client = _parse_client(request)
        if client is None:
            return ACTION_DUNNO
        sender = request.sender
        if self.cache is None:
            return self._verdict(client, sender)
        key = self.fingerprint() + (client.value, sender)
        verdict = self.cache.get(key)
        if verdict is MISS:
            verdict = self._verdict(client, sender)
            self.cache.put(key, verdict)
        return str(verdict)


class PluginChain:
    """Ordered plugin walk with first-non-DUNNO-wins semantics."""

    def __init__(self, plugins: List[PolicyPlugin]) -> None:
        if not plugins:
            raise ValueError("a policy chain needs at least one plugin")
        self.plugins = list(plugins)

    def fingerprint(self) -> Tuple[Hashable, ...]:
        return tuple(plugin.fingerprint() for plugin in self.plugins)

    def decide(self, request: PolicyRequest) -> str:
        """Answer one request.

        Non-``smtpd_access_policy`` requests and non-RCPT protocol
        states get ``DUNNO`` without consulting any plugin (Postfix can
        be configured to ask at several states; this daemon only holds
        opinions at RCPT, like postgrey).
        """
        if request.request != SMTPD_ACCESS_POLICY:
            return ACTION_DUNNO
        state = request.protocol_state
        if state and state != "RCPT":
            return ACTION_DUNNO
        # The pre-annotation types the loop variable for the call-graph
        # analyzer: plugin.check() dispatches to every PolicyPlugin
        # subclass, which is how ASY001 audits the full decision path
        # behind the daemon's coroutines.
        plugin: PolicyPlugin
        for plugin in self.plugins:
            action = plugin.check(request)
            if action != ACTION_DUNNO:
                return action
        return ACTION_DUNNO

    def flush(self) -> None:
        plugin: PolicyPlugin
        for plugin in self.plugins:
            plugin.flush()

    def close(self) -> None:
        plugin: PolicyPlugin
        for plugin in self.plugins:
            plugin.close()
