"""Extension bench: the Results-Validity adaptation sweep.

"The effectiveness of these two techniques can change in the future and it
is important to know when they will become obsolete" — this bench sweeps
ecosystems with growing fractions of fully-adapted malware and reports the
coverage frontier.
"""

import pytest

from repro.analysis.tables import format_percent, render_table
from repro.core.adaptation import obsolescence_level, sweep_adaptation

from _util import emit


def run_sweep():
    return sweep_adaptation(levels=(0.0, 0.1, 0.25, 0.5, 0.75, 1.0))


def test_adaptation_sweep(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = render_table(
        headers=("Adapted", "Greylisting", "Nolisting", "Combined"),
        rows=[
            (
                f"{p.adaptation:.0%}",
                format_percent(p.greylisting_coverage),
                format_percent(p.nolisting_coverage),
                format_percent(p.combined_coverage),
            )
            for p in points
        ],
        title="Spam coverage as malware adapts to the defences",
    )
    emit("Adaptation — obsolescence frontier", table)

    # 2015 status quo: the combination covers everything, each alone less.
    start = points[0]
    assert start.combined_coverage == pytest.approx(1.0)
    assert start.greylisting_coverage < 1.0
    assert start.nolisting_coverage < 1.0

    # Coverage decays monotonically as the ecosystem adapts ...
    combined = [p.combined_coverage for p in points]
    assert combined == sorted(combined, reverse=True)
    # ... down to zero for a fully adapted ecosystem.
    assert combined[-1] == 0.0

    # The "not worth paying the price anymore" point, for a 50% floor.
    assert obsolescence_level(points, floor=0.5) == 0.75
