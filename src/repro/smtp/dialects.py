"""SMTP dialects and dialect fingerprinting.

Stringhini et al. (B@bel, USENIX Security 2012) — cited by the paper as
the experimental confirmation that bots implement the delivery protocol
"in custom ways, not compliant with the RFCs" — showed that the *details*
of how a client speaks SMTP fingerprint botnets.  This module provides:

* :class:`DialectProfile` — a parameterized way of speaking SMTP (greeting
  verb, HELO-name shape, path bracketing, QUIT discipline, ...);
* canned profiles for compliant MTAs and for each of the paper's families;
* :class:`DialectFingerprinter` — classifies a session transcript as
  MTA-like or bot-like from its protocol features, and attributes bot
  transcripts to a known dialect.

The fingerprinting operates purely on :class:`~repro.smtp.wire.SessionTranscript`
objects, i.e. on what a passive observer at the server sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .wire import (
    SessionTranscript,
    render_mail_from,
    render_rcpt_to,
)


@dataclass(frozen=True)
class DialectProfile:
    """How one sender species speaks SMTP."""

    name: str
    greeting_verb: str = "EHLO"          # EHLO (ESMTP) vs HELO (old/bots)
    helo_is_fqdn: bool = True            # bots often send bare words/IPs
    brackets_paths: bool = True          # <a@b.c> vs bare a@b.c
    sends_quit: bool = True              # bots typically drop the socket
    resets_between_messages: bool = True
    pipelines: bool = False

    def greeting_line(self, helo_name: str) -> str:
        name = helo_name if self.helo_is_fqdn else helo_name.split(".")[0]
        return f"{self.greeting_verb} {name}"

    def mail_line(self, sender: str) -> str:
        return render_mail_from(sender, bracketed=self.brackets_paths)

    def rcpt_line(self, recipient: str) -> str:
        return render_rcpt_to(recipient, bracketed=self.brackets_paths)

    def session_script(
        self, helo_name: str, sender: str, recipient: str
    ) -> List[str]:
        """The command lines of one single-message delivery."""
        lines = [
            self.greeting_line(helo_name),
            self.mail_line(sender),
            self.rcpt_line(recipient),
            "DATA",
        ]
        if self.sends_quit:
            lines.append("QUIT")
        return lines


#: A well-behaved MTA (postfix-like).
COMPLIANT_MTA = DialectProfile(name="compliant-mta")

#: The bot dialects, shaped after the families' observed sloppiness.
CUTWAIL_DIALECT = DialectProfile(
    name="cutwail",
    greeting_verb="HELO",
    helo_is_fqdn=False,
    brackets_paths=False,
    sends_quit=False,
    resets_between_messages=False,
)

KELIHOS_DIALECT = DialectProfile(
    name="kelihos",
    greeting_verb="HELO",
    helo_is_fqdn=True,
    brackets_paths=True,
    sends_quit=False,
    resets_between_messages=False,
)

DARKMAILER_DIALECT = DialectProfile(
    name="darkmailer",
    greeting_verb="EHLO",
    # Mass-mailer software; speaks ESMTP but announces a bare word HELO
    # name, which is what separates it from a clean MTA on the wire.
    helo_is_fqdn=False,
    brackets_paths=True,
    sends_quit=True,
    resets_between_messages=False,
    pipelines=True,
)

KNOWN_DIALECTS: Tuple[DialectProfile, ...] = (
    COMPLIANT_MTA,
    CUTWAIL_DIALECT,
    KELIHOS_DIALECT,
    DARKMAILER_DIALECT,
)

DIALECT_BY_NAME: Dict[str, DialectProfile] = {d.name: d for d in KNOWN_DIALECTS}


@dataclass
class DialectFeatures:
    """Protocol features extracted from one transcript."""

    used_ehlo: bool
    helo_name_is_fqdn: bool
    bracketed_paths: bool
    quit_before_close: bool
    malformed_lines: int

    def as_tuple(self) -> Tuple[bool, bool, bool, bool]:
        return (
            self.used_ehlo,
            self.helo_name_is_fqdn,
            self.bracketed_paths,
            self.quit_before_close,
        )


def extract_features(transcript: SessionTranscript) -> DialectFeatures:
    """Pull the fingerprint features out of a wire transcript."""
    commands = transcript.client_commands()
    used_ehlo = any(c.verb == "EHLO" for c in commands)
    helo_name = next(
        (c.argument for c in commands if c.verb in ("HELO", "EHLO")), ""
    )
    helo_fqdn = "." in helo_name
    bracketed = True
    for raw in transcript.client_lines():
        upper = raw.upper()
        if upper.startswith("MAIL FROM:") or upper.startswith("RCPT TO:"):
            payload = raw.split(":", 1)[1].strip().split(" ")[0]
            if not (payload.startswith("<") and payload.endswith(">")):
                bracketed = False
    malformed = sum(1 for c in commands if c.verb == "MALFORMED")
    return DialectFeatures(
        used_ehlo=used_ehlo,
        helo_name_is_fqdn=helo_fqdn,
        bracketed_paths=bracketed,
        quit_before_close=transcript.ended_with_quit(),
        malformed_lines=malformed,
    )


def _profile_features(profile: DialectProfile) -> Tuple[bool, bool, bool, bool]:
    return (
        profile.greeting_verb == "EHLO",
        profile.helo_is_fqdn,
        profile.brackets_paths,
        profile.sends_quit,
    )


@dataclass
class FingerprintResult:
    """Outcome of classifying one transcript."""

    dialect: Optional[str]          # best-matching known dialect
    score: int                      # matching features (out of 4)
    bot_likelihood: float           # 0.0 (clean MTA) .. 1.0 (very bot-like)
    features: DialectFeatures = field(repr=False, default=None)

    @property
    def looks_like_bot(self) -> bool:
        return self.bot_likelihood >= 0.5


class DialectFingerprinter:
    """Attributes transcripts to dialects and scores bot-likeness."""

    def __init__(self, dialects: Sequence[DialectProfile] = KNOWN_DIALECTS):
        if not dialects:
            raise ValueError("need at least one dialect")
        self.dialects = tuple(dialects)

    def classify(self, transcript: SessionTranscript) -> FingerprintResult:
        features = extract_features(transcript)
        observed = features.as_tuple()
        best_name: Optional[str] = None
        best_score = -1
        for profile in self.dialects:
            score = sum(
                1
                for a, b in zip(observed, _profile_features(profile))
                if a == b
            )
            if score > best_score:
                best_score = score
                best_name = profile.name
        # Bot-likeness: count deviations from clean-MTA behaviour.
        deviations = sum(
            (
                not features.used_ehlo,
                not features.helo_name_is_fqdn,
                not features.bracketed_paths,
                not features.quit_before_close,
            )
        ) + min(features.malformed_lines, 2)
        bot_likelihood = min(1.0, deviations / 4.0)
        return FingerprintResult(
            dialect=best_name,
            score=best_score,
            bot_likelihood=bot_likelihood,
            features=features,
        )

    def classify_many(
        self, transcripts: Sequence[SessionTranscript]
    ) -> Dict[str, int]:
        """Histogram of best-match dialects over many transcripts."""
        counts: Dict[str, int] = {}
        for transcript in transcripts:
            result = self.classify(transcript)
            key = result.dialect or "unknown"
            counts[key] = counts.get(key, 0) + 1
        return counts


def play_dialect(
    profile: DialectProfile,
    server,
    clock,
    client_address,
    message,
    recipient: str,
    helo_name: str = "mail.sender.example",
) -> SessionTranscript:
    """Run one delivery in the given dialect and return the wire transcript.

    Convenience for experiments: opens a session on ``server`` (an
    :class:`~repro.smtp.server.SMTPServer`), speaks the profile's command
    script through a :class:`~repro.smtp.wire.TranscribingSession`, and
    hands back the transcript for fingerprinting.
    """
    from .wire import TranscribingSession

    session = server.session_factory(client_address)
    wire = TranscribingSession(session, clock)
    for line in profile.session_script(helo_name, message.sender, recipient):
        reply = wire.execute(line, message=message)
        if reply.is_permanent_failure and not line.upper().startswith("QUIT"):
            break
        if reply.is_transient_failure:
            break  # deferred: the dialect decides elsewhere whether to retry
    return wire.transcript
