"""Greylisting behind load-balanced MX farms (paper §II, second criticism).

Greylisting "only works if the client retries ... always with the same IP"
— and, symmetrically, only if the *server side* remembers the triplet
wherever the retry lands.  A domain with several equal-preference MX hosts
load-balances incoming connections (RFC 5321 makes compliant senders
randomize equal-preference exchangers), so a retry often reaches a
different MX than the original attempt.  If every MX keeps its own triplet
database, that retry looks brand new and is greylisted again — delays
multiply and early-give-up senders lose mail.

This experiment runs compliant senders against a two-MX greylisted domain
with (a) per-host triplet stores and (b) a shared store, and compares the
delivery-delay distributions — the quantitative case for sharing the
greylisting state (or pinning it at a layer above the MX farm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..dns.resolver import StubResolver
from ..dns.zone import ZoneStore
from ..greylist.policy import GreylistPolicy
from ..mta.profiles import PROFILES
from ..mta.queue import QueueEntryState, QueueManager
from ..net.address import AddressPool, IPv4Network
from ..net.host import SMTP_PORT, VirtualHost
from ..net.network import VirtualInternet
from ..sim.clock import Clock
from ..sim.events import EventScheduler
from ..sim.rng import RandomStream
from ..smtp.client import SMTPClient
from ..smtp.message import Message
from ..smtp.server import SMTPServer


@dataclass
class MultiMXResult:
    """Delivery outcomes for one store configuration."""

    shared_store: bool
    messages: int
    delivered: int
    lost: int
    delays: List[float]
    total_deferrals: int

    @property
    def mean_delay(self) -> float:
        return sum(self.delays) / len(self.delays) if self.delays else 0.0

    @property
    def max_delay(self) -> float:
        return max(self.delays) if self.delays else 0.0


def run_multimx_experiment(
    shared_store: bool,
    num_messages: int = 40,
    mx_count: int = 2,
    threshold: float = 300.0,
    mta_name: str = "postfix",
    seed: int = 37,
    horizon: float = 14 * 86400.0,
) -> MultiMXResult:
    """Compliant senders vs an equal-preference greylisted MX farm."""
    scheduler = EventScheduler(Clock())
    internet = VirtualInternet()
    zones = ZoneStore()
    resolver = StubResolver(zones, clock=scheduler.clock)
    server_pool = AddressPool(IPv4Network.parse("192.0.2.0/24"))
    client_pool = AddressPool(IPv4Network.parse("203.0.113.0/24"))
    rng = RandomStream(seed, f"multimx:{shared_store}")

    domain = "farm.example"
    zone = zones.get_or_create(domain)

    shared_policy = GreylistPolicy(clock=scheduler.clock, delay=threshold)
    policies: List[GreylistPolicy] = []
    for index in range(mx_count):
        if shared_store:
            policy = shared_policy
        else:
            policy = GreylistPolicy(clock=scheduler.clock, delay=threshold)
        policies.append(policy)
        hostname = f"mx{index}.{domain}"
        address = server_pool.allocate()
        zone.add_a(hostname, address)
        zone.add_mx(10, hostname)  # equal preference: a load-balanced farm
        server = SMTPServer(
            hostname=hostname,
            clock=scheduler.clock,
            policy=policy,
            local_domains=[domain],
        )
        host = VirtualHost(hostname, [address])
        host.listen(SMTP_PORT, server.session_factory)
        internet.register(host)

    profile = PROFILES[mta_name]
    queues: List[QueueManager] = []
    for index in range(num_messages):
        client = SMTPClient(
            internet=internet,
            resolver=resolver,
            source_address=client_pool.allocate(),
            helo_name=f"mail{index}.origin.example",
            rng=rng.split(f"client{index}"),
        )
        queue = QueueManager(scheduler, client, profile.schedule)
        queue.submit(
            Message(
                sender=f"user{index}@origin{index}.example",
                recipients=[f"staff@{domain}"],
            )
        )
        queues.append(queue)

    scheduler.run(until=horizon)

    delivered = 0
    lost = 0
    delays: List[float] = []
    for queue in queues:
        for entry in queue.entries:
            if entry.state is QueueEntryState.DELIVERED:
                delivered += 1
                delays.append(entry.delivery_delay)
            else:
                lost += 1
    deduped_policies = {id(p): p for p in policies}.values()
    total_deferrals = sum(len(p.deferrals()) for p in deduped_policies)
    return MultiMXResult(
        shared_store=shared_store,
        messages=num_messages,
        delivered=delivered,
        lost=lost,
        delays=delays,
        total_deferrals=total_deferrals,
    )


def compare_store_sharing(
    num_messages: int = 40, seed: int = 37
) -> List[MultiMXResult]:
    """Per-host stores vs a shared store, same senders and seed."""
    return [
        run_multimx_experiment(
            shared_store=False, num_messages=num_messages, seed=seed
        ),
        run_multimx_experiment(
            shared_store=True, num_messages=num_messages, seed=seed
        ),
    ]
