"""Backend bit-for-bit equivalence (the determinism contract, enforced).

Every triplet-store backend must produce *identical* greylisting outcomes:
the same :class:`~repro.greylist.policy.GreylistEvent` stream, store sizes,
expiry counters and snapshot bytes for the same input stream — with and
without storage faults (mid-stream restarts, torn journal tails), and
regardless of how many worker processes the shard runner fans over.
"""

import pytest

from repro.greylist.backends import BACKEND_NAMES, create_backend
from repro.greylist.persistence import dump_store, load_store
from repro.greylist.policy import GreylistPolicy
from repro.greylist.store import DAY, TripletStore
from repro.net.address import IPv4Address
from repro.sim.clock import Clock
from repro.sim.rng import RandomStream

DURABLE_BACKENDS = tuple(n for n in BACKEND_NAMES if n != "memory")


# ----------------------------------------------------------------------
# A deterministic, adversarial event stream
# ----------------------------------------------------------------------
def drive_policy(policy, clock, events=400, seed=97, sweep_every=50):
    """Drive one policy through a fixed mixed workload.

    The stream interleaves fresh triplets, timely retries, too-early
    retries, reuses of confirmed triplets and long gaps that expire
    state, with periodic sweeps — every code path a backend implements.
    """
    rng = RandomStream(seed, "store-equivalence")
    clients = [IPv4Address.parse(f"198.51.100.{i}") for i in range(1, 9)]
    for step in range(events):
        client = clients[rng.randrange(len(clients))]
        sender = f"s{rng.randrange(12)}@x.example"
        recipient = f"r{rng.randrange(3)}@victim.example"
        policy.on_rcpt_to(client, sender, recipient)
        roll = rng.random()
        if roll < 0.05:
            clock.advance_by(3 * DAY)      # expires unconfirmed triplets
        elif roll < 0.30:
            clock.advance_by(400.0)        # past the delay threshold
        else:
            clock.advance_by(37.5)         # too early to pass
        if step % sweep_every == sweep_every - 1:
            policy.store.sweep()


def run_with_backend(name, path=None, **drive_kwargs):
    clock = Clock()
    store = TripletStore(clock, backend=create_backend(name, path))
    policy = GreylistPolicy(clock=clock, delay=300.0, store=store)
    drive_policy(policy, clock, **drive_kwargs)
    return policy


def observable_state(policy):
    store = policy.store
    return {
        "events": policy.events,
        "size": store.size,
        "confirmed": store.confirmed,
        "expired_unconfirmed": store.expired_unconfirmed,
        "expired_confirmed": store.expired_confirmed,
        "snapshot": dump_store(store),
    }


class TestBackendEquivalence:
    def test_identical_event_streams_and_state(self, tmp_path):
        reference = observable_state(run_with_backend("memory"))
        assert len(reference["events"]) == 400
        assert reference["size"] > 0
        assert reference["expired_unconfirmed"] > 0
        for name in DURABLE_BACKENDS:
            state = observable_state(
                run_with_backend(name, tmp_path / f"eq.{name}")
            )
            assert state == reference, name

    def test_volatile_backends_equivalent_too(self):
        # path=None: SQLite :memory:, journal on an in-memory buffer.
        reference = observable_state(run_with_backend("memory"))
        for name in DURABLE_BACKENDS:
            assert observable_state(run_with_backend(name)) == reference

    def test_equivalence_across_restart(self, tmp_path):
        """Storage-fault leg: close + reopen mid-stream changes nothing.

        The durable run is split into two policy lifetimes over the same
        on-disk state; its concatenated event stream must equal the
        uninterrupted memory run's (counter state is per-lifetime, so the
        split runs' counters are compared as sums).
        """
        reference = run_with_backend("memory", events=400)

        for name in DURABLE_BACKENDS:
            path = tmp_path / f"restart.{name}"
            clock = Clock()
            first = TripletStore(clock, backend=create_backend(name, path))
            policy_a = GreylistPolicy(clock=clock, delay=300.0, store=first)
            drive_policy(policy_a, clock, events=200)
            first.close()

            second = TripletStore(clock, backend=create_backend(name, path))
            policy_b = GreylistPolicy(clock=clock, delay=300.0, store=second)
            _drive_second_half(policy_b, clock, events=400, split=200)

            merged_events = policy_a.events + policy_b.events
            assert merged_events == reference.events, name
            assert second.size == reference.store.size, name
            assert dump_store(second) == dump_store(reference.store), name
            expired_unconfirmed = (
                first.expired_unconfirmed + second.expired_unconfirmed
            )
            expired_confirmed = (
                first.expired_confirmed + second.expired_confirmed
            )
            assert expired_unconfirmed == reference.store.expired_unconfirmed
            assert expired_confirmed == reference.store.expired_confirmed
            second.close()

    def test_journal_torn_tail_mid_stream(self, tmp_path):
        """A torn final journal line plus its lost op re-applied on resume.

        Models the real crash: the op that tore was never acknowledged, so
        on restart the (idempotent) attempt is replayed by the mail client
        retrying.  Here we tear a *synthetic* garbage line — state on disk
        is exactly the pre-crash durable state, so resuming must match the
        uninterrupted memory run bit-for-bit.
        """
        reference = run_with_backend("memory", events=400)

        path = tmp_path / "torn.journal-store"
        clock = Clock()
        first = TripletStore(clock, backend=create_backend("journal", path))
        policy_a = GreylistPolicy(clock=clock, delay=300.0, store=first)
        drive_policy(policy_a, clock, events=200)
        first.close()
        journal_path = tmp_path / "torn.journal-store.journal"
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write("198.51.100.250 torn@x.exa")  # interrupted append

        backend = create_backend("journal", path)
        assert backend.recovered_torn_tail is True
        second = TripletStore(clock, backend=backend)
        policy_b = GreylistPolicy(clock=clock, delay=300.0, store=second)
        _drive_second_half(policy_b, clock, events=400, split=200)

        assert policy_a.events + policy_b.events == reference.events
        assert dump_store(second) == dump_store(reference.store)
        second.close()

    def test_dump_load_dump_fixpoint_across_backends(self, tmp_path):
        """dump -> load -> dump is the identity, whatever backend loads it."""
        source = run_with_backend("memory")
        text = dump_store(source.store)
        for name in BACKEND_NAMES:
            restored = load_store(
                text,
                source.clock,
                backend=create_backend(name, tmp_path / f"fix.{name}"),
            )
            assert dump_store(restored) == text, name
            assert restored.size == source.store.size, name
            restored.close()

    def test_cross_backend_migration(self, tmp_path):
        """Snapshots move state between backends without loss."""
        source = run_with_backend("sqlite", tmp_path / "mig.db")
        text = dump_store(source.store)
        migrated = load_store(
            text,
            source.clock,
            backend=create_backend("journal", tmp_path / "mig.snap"),
        )
        assert dump_store(migrated) == text
        migrated.close()
        source.store.close()


class TestExperimentLevelEquivalence:
    def test_greylist_experiment_all_backends(self, tmp_path):
        from repro.botnet.families import KELIHOS
        from repro.core.greylist_experiment import run_greylist_experiment

        reference = run_greylist_experiment(
            KELIHOS, 300.0, num_messages=30, seed=11
        )
        for name in DURABLE_BACKENDS:
            result = run_greylist_experiment(
                KELIHOS,
                300.0,
                num_messages=30,
                seed=11,
                store_backend=name,
                store_path=str(tmp_path / f"exp.{name}"),
            )
            assert result == reference, name

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_deployment_sweep_backends_and_workers(self, workers):
        """Shard-runner leg: every backend x worker count, one answer."""
        from repro.core.internet_scale import sweep_deployment_rates

        reference = sweep_deployment_rates(
            rates=[(0.3, 0.1), (0.7, 0.2)],
            messages=40,
            seed=19,
            num_domains=30,
            workers=1,
        )
        for name in BACKEND_NAMES:
            results = sweep_deployment_rates(
                rates=[(0.3, 0.1), (0.7, 0.2)],
                messages=40,
                seed=19,
                num_domains=30,
                workers=workers,
                store_backend=name,
            )
            assert results == reference, (name, workers)

    def test_synergy_all_backends(self):
        from repro.core.synergy import run_synergy_experiment

        for engine in ("object", "batch"):
            reference = run_synergy_experiment(
                "both", num_messages=12, seed=5, engine=engine
            )
            for name in DURABLE_BACKENDS:
                result = run_synergy_experiment(
                    "both",
                    num_messages=12,
                    seed=5,
                    engine=engine,
                    store_backend=name,
                )
                assert result == reference, (engine, name)

    def test_cost_attack_all_backends(self, tmp_path):
        from repro.core.cost_attack import run_cost_attack

        reference = run_cost_attack(
            spam_per_day=80, benign_per_day=10, duration_days=4.0
        )
        for name in DURABLE_BACKENDS:
            result = run_cost_attack(
                spam_per_day=80,
                benign_per_day=10,
                duration_days=4.0,
                store_backend=name,
                store_path=str(tmp_path / f"cost.{name}"),
            )
            assert result == reference, name


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _drive_second_half(policy, clock, events, split, seed=97, sweep_every=50):
    """Replay `drive_policy`'s stream from `split` onward.

    The RNG draws for steps < split are consumed without touching the
    policy (the clock was already advanced by the first lifetime), so the
    resumed run sees exactly the draws the uninterrupted run would.
    """
    rng = RandomStream(seed, "store-equivalence")
    clients = [IPv4Address.parse(f"198.51.100.{i}") for i in range(1, 9)]
    for step in range(events):
        client = clients[rng.randrange(len(clients))]
        sender = f"s{rng.randrange(12)}@x.example"
        recipient = f"r{rng.randrange(3)}@victim.example"
        if step >= split:
            policy.on_rcpt_to(client, sender, recipient)
        roll = rng.random()
        if step >= split:
            if roll < 0.05:
                clock.advance_by(3 * DAY)
            elif roll < 0.30:
                clock.advance_by(400.0)
            else:
                clock.advance_by(37.5)
            if step % sweep_every == sweep_every - 1:
                policy.store.sweep()


# ----------------------------------------------------------------------
# Shared-memory backend: sequential consistency under real concurrency
# ----------------------------------------------------------------------
# POSIX record locks are per-process, so these tests fork real worker
# processes, each attaching its own backend instance to one segment —
# the exact topology of the prefork serving daemon.

def _worker_observe_all(segment, keys, now, barrier, out):
    """One 'policy worker': observe every triplet once at time ``now``."""
    from repro.greylist.shm import SharedMemoryBackend
    from repro.greylist.triplet import Triplet

    backend = SharedMemoryBackend(segment=segment)
    clock = Clock(start=now)
    store = TripletStore(clock, backend=backend)
    try:
        barrier.wait()
        attempts = 0
        for i in range(keys):
            entry = store.observe(
                Triplet(
                    IPv4Address.parse(f"198.51.101.{i + 1}"),
                    f"w{i}@x.example",
                    "r@victim.example",
                )
            )
            attempts += entry.attempts
        out.put((store.expired_unconfirmed, store.expired_confirmed))
    finally:
        store.close()


def _worker_lookup_all(segment, keys, now, barrier, out):
    """One worker racing lazy expiry through ``lookup``."""
    from repro.greylist.shm import SharedMemoryBackend
    from repro.greylist.triplet import Triplet

    backend = SharedMemoryBackend(segment=segment)
    clock = Clock(start=now)
    store = TripletStore(clock, backend=backend)
    try:
        barrier.wait()
        for i in range(keys):
            store.lookup(
                Triplet(
                    IPv4Address.parse(f"198.51.101.{i + 1}"),
                    f"w{i}@x.example",
                    "r@victim.example",
                )
            )
        out.put((store.expired_unconfirmed, store.expired_confirmed))
    finally:
        store.close()


class TestSharedMemoryConcurrency:
    """The 8-worker contract: no lost writes, no resurrection, counters sum."""

    WORKERS = 8
    KEYS = 24

    def _seed(self, backend, passed=False):
        from repro.greylist.store import TripletEntry
        from repro.greylist.triplet import Triplet

        for i in range(self.KEYS):
            backend.put(
                TripletEntry(
                    triplet=Triplet(
                        IPv4Address.parse(f"198.51.101.{i + 1}"),
                        f"w{i}@x.example",
                        "r@victim.example",
                    ),
                    first_seen=0.0,
                    last_seen=0.0,
                    attempts=3,
                    passed=passed,
                    passed_at=0.0 if passed else None,
                )
            )

    def _fan_out(self, target, segment, now):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(self.WORKERS)
        out = ctx.Queue()
        procs = [
            ctx.Process(
                target=target, args=(segment, self.KEYS, now, barrier, out)
            )
            for _ in range(self.WORKERS)
        ]
        for proc in procs:
            proc.start()
        counters = [out.get(timeout=60) for _ in procs]
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        return counters

    def test_observe_counters_conserved_and_no_resurrection(self):
        from repro.greylist.shm import SharedMemoryBackend

        backend = SharedMemoryBackend(capacity=2048)
        try:
            self._seed(backend, passed=False)
            now = 3 * DAY  # past retry_window: every seed is expired
            counters = self._fan_out(_worker_observe_all, backend.segment, now)
            # Each stale triplet's expiry was observed by exactly one
            # worker fleet-wide; everyone else saw the fresh entry.
            assert sum(u for u, _ in counters) == self.KEYS
            assert sum(c for _, c in counters) == 0
            entries = list(backend.scan())
            assert len(entries) == self.KEYS
            for entry in entries:
                assert entry.first_seen == now    # no resurrection
                assert not entry.passed
                assert entry.attempts == self.WORKERS  # no lost attempts
            assert backend.spill_count == 0
        finally:
            backend.close()

    def test_confirmed_expiry_counted_once(self):
        from repro.greylist.shm import SharedMemoryBackend

        backend = SharedMemoryBackend(capacity=2048)
        try:
            self._seed(backend, passed=True)
            now = 36 * DAY  # past whitelist_lifetime for confirmed seeds
            counters = self._fan_out(_worker_observe_all, backend.segment, now)
            assert sum(c for _, c in counters) == self.KEYS
            assert sum(u for u, _ in counters) == 0
            for entry in backend.scan():
                assert not entry.passed  # confirmation did not leak through
                assert entry.first_seen == now
        finally:
            backend.close()

    def test_lookup_expiry_counted_once_fleet_wide(self):
        from repro.greylist.shm import SharedMemoryBackend

        backend = SharedMemoryBackend(capacity=2048)
        try:
            self._seed(backend, passed=False)
            counters = self._fan_out(
                _worker_lookup_all, backend.segment, 3 * DAY
            )
            assert sum(u + c for u, c in counters) == self.KEYS
            assert len(backend) == 0  # lookup expires, never recreates
        finally:
            backend.close()


class TestSharedMemoryDrain:
    """SIGTERM to the prefork master loses no acknowledged write."""

    def test_zero_lost_acknowledged_writes_across_drain(self, tmp_path):
        import os
        import signal
        import socket as socket_module
        import subprocess
        import sys
        from pathlib import Path

        import repro

        store_path = tmp_path / "drain.shm"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(repro.__file__).resolve().parents[1])
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro",
                "--workers", "2",
                "--store-backend", "shm",
                "--store-path", str(store_path),
                "serve", "--clock", "replay",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        writes = 40
        try:
            line = proc.stdout.readline().strip()
            assert line.startswith("listening on "), line
            host, _, port = line.rpartition(" ")[2].partition(":")
            acknowledged = 0
            for i in range(writes):
                sock = socket_module.create_connection(
                    (host, int(port)), timeout=10
                )
                try:
                    sock.sendall(
                        (
                            "request=smtpd_access_policy\n"
                            f"client_address=198.51.102.{i + 1}\n"
                            f"sender=d{i}@x.example\n"
                            "recipient=r@victim.example\n"
                            f"stamp={float(i)}\n\n"
                        ).encode()
                    )
                    data = b""
                    while b"\n\n" not in data:
                        chunk = sock.recv(4096)
                        if not chunk:
                            break
                        data += chunk
                    if data.startswith(b"action="):
                        acknowledged += 1
                finally:
                    sock.close()
            assert acknowledged == writes
        finally:
            proc.send_signal(signal.SIGTERM)
            status = proc.wait(timeout=30)
            output = proc.stdout.read()
            proc.stdout.close()
        assert status == 0, output

        # Reattach the persisted segment cold: every acknowledged
        # decision's triplet write must still be there.
        from repro.greylist.shm import SharedMemoryBackend

        reopened = SharedMemoryBackend(store_path)
        try:
            assert len(list(reopened.scan())) == writes
        finally:
            reopened.unlink()
