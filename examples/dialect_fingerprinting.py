#!/usr/bin/env python3
"""SMTP-dialect fingerprinting: telling bots from MTAs by their manners.

The paper's opening observation (via Stringhini et al.'s B@bel) is that
spam malware implements SMTP "in custom ways — not compliant with the
RFCs", and that those dialects fingerprint botnets.  This example shows
the wire transcripts of each dialect side by side, then runs the passive
fingerprinting over a realistic traffic mix.

Run:  python examples/dialect_fingerprinting.py
"""

from repro.analysis.tables import format_percent, render_table
from repro.core.dialect_survey import run_dialect_survey
from repro.net.address import IPv4Address
from repro.sim.clock import Clock
from repro.smtp.dialects import (
    KNOWN_DIALECTS,
    DialectFingerprinter,
    play_dialect,
)
from repro.smtp.message import Message
from repro.smtp.server import SMTPServer


def show_transcripts() -> None:
    fingerprinter = DialectFingerprinter()
    for profile in KNOWN_DIALECTS:
        clock = Clock()
        server = SMTPServer(hostname="smtp.victim.example", clock=clock)
        message = Message(
            sender="sender@origin.example",
            recipients=["user@victim.example"],
        )
        transcript = play_dialect(
            profile,
            server,
            clock,
            IPv4Address.parse("198.51.100.7"),
            message,
            "user@victim.example",
            helo_name="mail.origin.example",
        )
        result = fingerprinter.classify(transcript)
        print(f"--- dialect: {profile.name} "
              f"(bot-likelihood {result.bot_likelihood:.2f}) ---")
        for line in transcript.client_lines():
            print(f"  C: {line}")
        print()


def main() -> None:
    print("wire transcripts per dialect:\n")
    show_transcripts()

    print("fingerprinting a mixed traffic sample (55% MTA / 45% bots) ...")
    result = run_dialect_survey(num_sessions=500, seed=29)
    print(
        render_table(
            headers=("Metric", "Value"),
            rows=[
                ("sessions", result.sessions),
                ("dialect attribution accuracy",
                 format_percent(result.attribution_accuracy)),
                ("bot detection precision", format_percent(result.precision)),
                ("bot detection recall", format_percent(result.recall)),
                ("dialect histogram", str(dict(sorted(
                    result.dialect_histogram.items())))),
            ],
            title="Passive fingerprinting results",
        )
    )
    print(
        "\nreading: sloppy dialects (Cutwail) stand out immediately; a bot\n"
        "that speaks near-perfect SMTP (Darkmailer) evades wire\n"
        "fingerprinting — which is why delivery-logic defences like\n"
        "greylisting and nolisting complement it."
    )


if __name__ == "__main__":
    main()
