"""Ablation bench: provider whitelisting on/off.

§VI: "it is fundamental for greylisting services to white-list web-mail
providers".  Measures the benign-delay distribution and mail loss of the
university deployment with and without the stock provider whitelist, and
the per-provider outcome at a 6 h threshold.
"""

from repro.analysis.tables import format_seconds, render_table
from repro.core.deployment import run_deployment_experiment
from repro.core.webmail_experiment import run_webmail_experiment
from repro.greylist.whitelist import default_provider_whitelist

from _util import emit


def run_ablation():
    plain = run_deployment_experiment(num_messages=1200, seed=5)
    whitelisted = run_deployment_experiment(
        num_messages=1200, seed=5, whitelist=default_provider_whitelist()
    )
    webmail_rows = run_webmail_experiment()
    return plain, whitelisted, webmail_rows


def test_ablation_provider_whitelist(benchmark):
    plain, whitelisted, webmail_rows = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    table = render_table(
        headers=("Deployment", "Median delay", "P90 delay", "Lost messages"),
        rows=[
            (
                "no whitelist (paper's Table III setup)",
                format_seconds(plain.delay_cdf().median),
                format_seconds(plain.delay_cdf().quantile(0.9)),
                plain.lost,
            ),
            (
                "stock provider whitelist",
                format_seconds(whitelisted.delay_cdf().median),
                format_seconds(whitelisted.delay_cdf().quantile(0.9)),
                whitelisted.lost,
            ),
        ],
        title="University deployment, 300 s threshold, 1200 messages",
    )
    emit("Ablation — provider whitelist", table)

    # Whitelisting the big providers strictly improves the benign picture.
    assert whitelisted.delay_cdf().mean < plain.delay_cdf().mean
    assert whitelisted.delay_cdf().quantile(0.9) <= plain.delay_cdf().quantile(0.9)
    assert whitelisted.lost <= plain.lost

    # Why it matters: without the whitelist, at 6 h, multi-IP farms and
    # early give-ups fail or crawl (qq.com and aol.com lose the message).
    undelivered = {r.provider for r in webmail_rows if not r.delivered}
    assert undelivered == {"qq.com", "aol.com"}
