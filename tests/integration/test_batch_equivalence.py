"""Property tests: the batch engines are bit-identical to the object path.

The equivalence-class engines (``engine="batch"``) exist purely as a
performance optimization — every observable result must match the
per-object simulation exactly, for any seed, any configuration and any
worker count.  These tests pin that contract.
"""

import pytest

from repro.botnet.families import CUTWAIL, DARKMAILER
from repro.core.adoption import run_adoption_experiment
from repro.core.internet_scale import run_internet_scale, sweep_deployment_rates
from repro.core.synergy import run_synergy_experiment, sweep_greylist_delay
from repro.sim.batch import BatchCounters, SessionOutcomeCache


class TestAdoptionEquivalence:
    def test_multi_chunk_identical(self):
        # 1100 domains = 3 chunks (one partial), exercising the shard merge.
        obj = run_adoption_experiment(num_domains=1100, seed=5, engine="object")
        bat = run_adoption_experiment(num_domains=1100, seed=5, engine="batch")
        assert bat.summary.counts == obj.summary.counts
        assert bat.summary.flapped == obj.summary.flapped
        assert bat.summary.total_domains == obj.summary.total_domains
        assert bat.confusion == obj.confusion
        assert bat.repaired_mx_records == obj.repaired_mx_records
        assert bat.crosscheck == obj.crosscheck
        assert bat.ground_truth == obj.ground_truth

    def test_identical_under_fault_injection(self):
        # Fault draws are keyed by entity, not by execution order, so the
        # batch engine must reproduce the faulted verdicts too.
        kwargs = dict(num_domains=600, seed=9, fault_rate=0.05, fault_seed=77)
        obj = run_adoption_experiment(engine="object", **kwargs)
        bat = run_adoption_experiment(engine="batch", **kwargs)
        assert bat.summary.counts == obj.summary.counts
        assert bat.summary.flapped == obj.summary.flapped
        assert bat.confusion == obj.confusion
        assert bat.repaired_mx_records == obj.repaired_mx_records

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_adoption_experiment(num_domains=60, engine="vectorized")


class TestInternetScaleEquivalence:
    @pytest.mark.parametrize("seed", [61, 7, 1234])
    @pytest.mark.parametrize(
        "grey,nolist", [(0.0, 0.0), (0.3, 0.1), (0.8, 0.2)]
    )
    def test_identical_across_rates_and_seeds(self, seed, grey, nolist):
        kwargs = dict(
            num_domains=60,
            greylisting_rate=grey,
            nolisting_rate=nolist,
            messages=200,
            seed=seed,
        )
        obj = run_internet_scale(engine="object", **kwargs)
        bat = run_internet_scale(engine="batch", **kwargs)
        assert bat == obj

    @pytest.mark.parametrize("delay", [5.0, 300.0, 21600.0])
    def test_identical_across_greylist_delays(self, delay):
        kwargs = dict(
            num_domains=50,
            greylisting_rate=0.5,
            nolisting_rate=0.2,
            messages=150,
            greylist_delay=delay,
            seed=17,
        )
        assert run_internet_scale(engine="batch", **kwargs) == run_internet_scale(
            engine="object", **kwargs
        )

    def test_counters_report_collapse(self):
        counters = BatchCounters()
        run_internet_scale(
            num_domains=5000,
            messages=300,
            seed=61,
            engine="batch",
            counters=counters,
        )
        assert counters.members == 300
        # family x deployment classes: at most 4 x 3.
        assert counters.classes <= 12
        assert counters.collapse_factor > 10

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_internet_scale(num_domains=10, engine="turbo")


class TestSynergyEquivalence:
    @pytest.mark.parametrize("configuration", ["greylist", "dnsbl", "both"])
    @pytest.mark.parametrize("seed", [31, 99])
    def test_identical_per_configuration(self, configuration, seed):
        kwargs = dict(greylist_delay=300.0, reports_per_hour=60.0, seed=seed)
        obj = run_synergy_experiment(configuration, engine="object", **kwargs)
        bat = run_synergy_experiment(configuration, engine="batch", **kwargs)
        assert bat == obj

    @pytest.mark.parametrize("delay", [5.0, 3600.0, 21600.0])
    def test_identical_across_delays(self, delay):
        kwargs = dict(greylist_delay=delay, seed=31)
        assert run_synergy_experiment(
            "both", engine="batch", **kwargs
        ) == run_synergy_experiment("both", engine="object", **kwargs)

    @pytest.mark.parametrize("family", [CUTWAIL, DARKMAILER])
    def test_identical_for_fire_and_forget_families(self, family):
        kwargs = dict(family=family, greylist_delay=300.0, seed=31)
        assert run_synergy_experiment(
            "both", engine="batch", **kwargs
        ) == run_synergy_experiment("both", engine="object", **kwargs)

    def test_batch_refuses_local_reporting(self):
        with pytest.raises(ValueError, match="local"):
            run_synergy_experiment("both", local_reporting=True, engine="batch")

    def test_batch_refuses_delisting_horizons(self):
        # Beyond the listing lifetime the blacklist auto-delists; the
        # replay's monotonic "listed" assumption would be unsound.
        with pytest.raises(ValueError, match="horizon"):
            run_synergy_experiment("dnsbl", horizon=40_000_000.0, engine="batch")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_synergy_experiment("both", engine="quantum")


class TestWorkerAndCacheDeterminism:
    def test_internet_scale_sweep_identical_across_workers(self):
        runs = [
            sweep_deployment_rates(
                messages=150, num_domains=200, seed=61, workers=w, engine="batch"
            )
            for w in (1, 2, 4)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_synergy_sweep_identical_across_workers(self):
        runs = [
            sweep_greylist_delay(seed=31, workers=w, engine="batch")
            for w in (1, 2, 4)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_shared_cache_matches_fresh_cache(self):
        # A playbook cached by one run and replayed by the next must not
        # change anything: the cache is a pure memo.
        shared = SessionOutcomeCache()
        kwargs = dict(num_domains=100, messages=200, seed=61, engine="batch")
        first = run_internet_scale(session_cache=shared, **kwargs)
        second = run_internet_scale(session_cache=shared, **kwargs)
        fresh = run_internet_scale(**kwargs)
        assert first == second == fresh
        assert shared.hits > 0

    def test_capacity_one_cache_matches_unbounded(self):
        # Constant eviction churn (capacity 1) rebuilds playbooks over and
        # over but must never change the result.
        tiny = SessionOutcomeCache(capacity=1)
        kwargs = dict(num_domains=100, messages=200, seed=61, engine="batch")
        assert run_internet_scale(session_cache=tiny, **kwargs) == run_internet_scale(
            **kwargs
        )
        assert tiny.evictions > 0

    def test_synergy_shared_cache_matches_fresh(self):
        shared = SessionOutcomeCache()
        kwargs = dict(greylist_delay=300.0, seed=31, engine="batch")
        first = run_synergy_experiment("both", session_cache=shared, **kwargs)
        second = run_synergy_experiment("both", session_cache=shared, **kwargs)
        assert first == second == run_synergy_experiment("both", **kwargs)
        assert shared.hits > 0
