"""Unit tests for greylisting whitelists."""

from repro.greylist.whitelist import (
    DEFAULT_WHITELISTED_DOMAINS,
    Whitelist,
    default_provider_whitelist,
)
from repro.net.address import IPv4Address, IPv4Network


def addr(text):
    return IPv4Address.parse(text)


class TestWhitelistMatching:
    def test_empty_matches_nothing(self):
        whitelist = Whitelist()
        assert whitelist.is_empty
        assert not whitelist.matches(addr("1.2.3.4"), "a@b.net")

    def test_exact_address(self):
        whitelist = Whitelist()
        whitelist.add_address(addr("1.2.3.4"))
        assert whitelist.matches_client(addr("1.2.3.4"))
        assert not whitelist.matches_client(addr("1.2.3.5"))

    def test_cidr_network(self):
        whitelist = Whitelist()
        whitelist.add_cidr("10.1.0.0/16")
        assert whitelist.matches_client(addr("10.1.200.3"))
        assert not whitelist.matches_client(addr("10.2.0.1"))

    def test_add_network_object(self):
        whitelist = Whitelist()
        whitelist.add_network(IPv4Network.parse("172.16.0.0/12"))
        assert whitelist.matches_client(addr("172.20.1.1"))

    def test_sender_domain(self):
        whitelist = Whitelist()
        whitelist.add_sender_domain("Gmail.COM")
        assert whitelist.matches_sender("bob@gmail.com")
        assert not whitelist.matches_sender("bob@gmail.com.evil.net")

    def test_helo_suffix(self):
        whitelist = Whitelist()
        whitelist.add_helo_suffix("google.com")
        assert whitelist.matches_helo("mail-out17.google.com")
        assert whitelist.matches_helo("google.com")
        assert not whitelist.matches_helo("notgoogle.com")
        assert not whitelist.matches_helo(None)

    def test_composite_matches(self):
        whitelist = Whitelist()
        whitelist.add_sender_domain("gmail.com")
        assert whitelist.matches(addr("9.9.9.9"), "x@gmail.com")
        assert not whitelist.matches(addr("9.9.9.9"), "x@other.net")

    def test_update_merges(self):
        a = Whitelist()
        a.add_sender_domain("gmail.com")
        b = Whitelist()
        b.add_address(addr("1.2.3.4"))
        a.update(b)
        assert a.matches_client(addr("1.2.3.4"))
        assert a.matches_sender("x@gmail.com")

    def test_sender_matching_is_case_insensitive(self):
        # Regression: the probe side was never lowercased, so a raw
        # ``User@Gmail.com`` missed a ``gmail.com`` entry.
        whitelist = Whitelist()
        whitelist.add_sender_domain("gmail.com")
        assert whitelist.matches_sender("User@Gmail.com")
        assert whitelist.matches_sender("User@GMAIL.COM.")
        assert not whitelist.matches_sender("User@gmail.com.evil.net")

    def test_update_deduplicates_networks_and_suffixes(self):
        # Regression: merging overlapping whitelists used to append
        # duplicate networks/HELO suffixes, inflating per-lookup cost.
        a = Whitelist()
        a.add_cidr("10.1.0.0/16")
        a.add_helo_suffix("google.com")
        b = Whitelist()
        b.add_cidr("10.1.0.0/16")
        b.add_helo_suffix("Google.COM")
        for _ in range(3):
            a.update(b)
        assert len(a._networks) == 1
        assert len(a._helo_suffixes) == 1
        assert a.matches_client(addr("10.1.2.3"))
        assert a.matches_helo("mx.google.com")

    def test_repeated_adds_deduplicate(self):
        whitelist = Whitelist()
        for _ in range(4):
            whitelist.add_cidr("10.1.0.0/16")
            whitelist.add_helo_suffix("google.com")
        assert len(whitelist._networks) == 1
        assert len(whitelist._helo_suffixes) == 1


class TestDefaultProviderWhitelist:
    def test_covers_all_table3_providers(self):
        whitelist = default_provider_whitelist()
        for domain in DEFAULT_WHITELISTED_DOMAINS:
            assert whitelist.matches_sender(f"user@{domain}")

    def test_ten_providers_listed(self):
        assert len(DEFAULT_WHITELISTED_DOMAINS) == 10
