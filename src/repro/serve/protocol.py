"""Postfix policy-delegation protocol (`SMTPD_POLICY_README`).

Postfix delegates an SMTP-time decision by writing one *stanza* of
``name=value`` attribute lines followed by an empty line, and expects a
single ``action=...`` line (plus empty line) back::

    request=smtpd_access_policy
    protocol_state=RCPT
    client_address=198.51.100.7
    sender=spam@kelihos.example
    recipient=victim1@victim.example

    action=DEFER_IF_PERMIT 450 4.2.0 Greylisted

The daemon keeps the connection open and pipelines further stanzas, so
parsing must be *incremental*: :class:`StanzaParser` accumulates bytes
and yields complete requests as they arrive, without re-scanning or
copying already-seen bytes (the buffer is compacted at most once per
``feed``, and the terminator search resumes where the last one stopped).

Tolerances follow Postfix semantics:

* unknown attributes are preserved verbatim (Postfix adds new ones
  between releases; iRedAPD ignores what it does not know);
* ``=`` may appear in values (split on the first one only);
* a trailing ``\\r`` per line is stripped, so CRLF transcripts parse;
* duplicate attributes keep the last value.

Hard errors (:class:`ProtocolError`): an attribute line with no ``=`` at
all, and a stanza that exceeds ``max_request_bytes`` before its
terminating empty line arrives (a runaway or malicious peer must not
grow the buffer unboundedly).

The ``stamp`` attribute is this repo's extension: the load generator and
the replay/equivalence harness attach the *virtual-time* timestamp of
each simulated delivery attempt, so a daemon running a
:class:`~repro.serve.server.ReplayClock` reproduces the simulator's
decisions bit-for-bit.  Real Postfix never sends it; live daemons ignore
it.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional

#: Stanza terminator: an empty line.  Postfix sends bare LF; the CRLF
#: alternative keeps recorded transcripts and manual netcat sessions
#: parseable (the per-line trailing ``\r`` is stripped during parsing).
_TERMINATOR = re.compile(rb"\n\r?\n")

#: The only request type Postfix currently defines.
SMTPD_ACCESS_POLICY = "smtpd_access_policy"

#: Default cap on a single stanza (Postfix sends well under 2 KiB).
MAX_REQUEST_BYTES = 16384

#: Actions the built-in plugins emit (any Postfix access(5) action is
#: legal on the wire; these are the vocabulary of this daemon).
ACTION_DUNNO = "DUNNO"
ACTION_OK = "OK"
ACTION_DEFER_IF_PERMIT = "DEFER_IF_PERMIT"
ACTION_REJECT = "REJECT"


class ProtocolError(ValueError):
    """Raised on a malformed or oversized policy stanza."""


class PolicyRequest:
    """One parsed policy stanza (attribute map plus typed accessors)."""

    __slots__ = ("attrs",)

    def __init__(self, attrs: Dict[str, str]) -> None:
        self.attrs = attrs

    def get(self, name: str, default: str = "") -> str:
        return self.attrs.get(name, default)

    @property
    def request(self) -> str:
        return self.attrs.get("request", "")

    @property
    def protocol_state(self) -> str:
        return self.attrs.get("protocol_state", "")

    @property
    def client_address(self) -> str:
        return self.attrs.get("client_address", "")

    @property
    def sender(self) -> str:
        return self.attrs.get("sender", "")

    @property
    def recipient(self) -> str:
        return self.attrs.get("recipient", "")

    @property
    def helo_name(self) -> str:
        return self.attrs.get("helo_name", "")

    @property
    def stamp(self) -> Optional[float]:
        """Virtual-time stamp (replay extension); ``None`` when absent."""
        raw = self.attrs.get("stamp")
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            return None

    def __repr__(self) -> str:
        return (
            f"PolicyRequest(state={self.protocol_state!r}, "
            f"client={self.client_address!r}, sender={self.sender!r}, "
            f"recipient={self.recipient!r})"
        )


class StanzaParser:
    """Incremental parser for a stream of policy stanzas.

    Feed raw socket bytes in; complete :class:`PolicyRequest` objects
    come out.  State between feeds is one ``bytearray`` and the offset
    the terminator search should resume from, so pipelined bursts parse
    in one pass and a stanza split across TCP segments costs nothing
    extra.
    """

    __slots__ = ("max_request_bytes", "_buffer", "_scan")

    def __init__(self, max_request_bytes: int = MAX_REQUEST_BYTES) -> None:
        if max_request_bytes < 64:
            raise ValueError("max_request_bytes must be >= 64")
        self.max_request_bytes = max_request_bytes
        self._buffer = bytearray()
        self._scan = 0

    @property
    def pending(self) -> int:
        """Bytes of an incomplete stanza still buffered (EOF => truncated)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[PolicyRequest]:
        """Consume ``data``; return every request it completed."""
        buffer = self._buffer
        buffer += data
        requests: List[PolicyRequest] = []
        start = 0
        # Resume scanning a couple of bytes before the previous end so a
        # terminator straddling two feeds is still found.
        scan = self._scan
        while True:
            match = _TERMINATOR.search(buffer, scan)
            if match is None:
                break
            end = match.start()
            if end - start > self.max_request_bytes:
                raise ProtocolError(
                    f"policy request exceeds {self.max_request_bytes} bytes"
                )
            requests.append(self._parse(bytes(buffer[start:end])))
            start = match.end()
            scan = start
        if start:
            del buffer[:start]
        if len(buffer) > self.max_request_bytes:
            raise ProtocolError(
                f"policy request exceeds {self.max_request_bytes} bytes "
                "without a terminating empty line"
            )
        self._scan = max(0, len(buffer) - 2)
        return requests

    @staticmethod
    def _parse(stanza: bytes) -> PolicyRequest:
        # One decode per stanza; attributes are ASCII per the protocol,
        # surrogateescape keeps odd bytes representable without raising.
        text = stanza.decode("ascii", "surrogateescape")
        attrs: Dict[str, str] = {}
        for line in text.split("\n"):
            if line.endswith("\r"):
                line = line[:-1]
            if not line:
                continue
            name, sep, value = line.partition("=")
            if not sep or not name:
                raise ProtocolError(
                    f"malformed policy attribute line {line!r}"
                )
            attrs[name] = value
        return PolicyRequest(attrs)


# ----------------------------------------------------------------------
# Wire formatting
# ----------------------------------------------------------------------

#: Response bytes for the handful of actions a serving chain emits are
#: rendered once; arbitrary action strings fall through to a fresh encode.
_RESPONSE_CACHE: Dict[str, bytes] = {}  # repro: noqa SHM001 - pure-function memo; per-process divergence is harmless
_RESPONSE_CACHE_MAX = 256


def format_response(action: str) -> bytes:
    """Render ``action=...`` + stanza terminator as wire bytes."""
    cached = _RESPONSE_CACHE.get(action)
    if cached is None:
        cached = f"action={action}\n\n".encode("ascii", "surrogateescape")
        if len(_RESPONSE_CACHE) < _RESPONSE_CACHE_MAX:
            _RESPONSE_CACHE[action] = cached
    return cached


def format_request(attrs: Dict[str, str]) -> bytes:
    """Render one request stanza (client side: loadgen, tests)."""
    lines = [f"{name}={value}" for name, value in attrs.items()]
    lines.append("")
    lines.append("")
    return "\n".join(lines).encode("ascii", "surrogateescape")


def parse_response(stanza: bytes) -> str:
    """Extract the action from one response stanza (terminator optional)."""
    text = stanza.decode("ascii", "surrogateescape").strip()
    for line in text.split("\n"):
        name, sep, value = line.partition("=")
        if sep and name == "action":
            return value.strip()
    raise ProtocolError(f"no action attribute in response {stanza!r}")


def iter_response_actions(buffer: bytearray) -> Iterator[str]:
    """Yield actions from complete response stanzas, consuming them.

    Client-side mirror of :class:`StanzaParser` for the simple
    ``action=...`` responses; leftover bytes stay in ``buffer``.
    """
    while True:
        end = buffer.find(b"\n\n")
        if end < 0:
            return
        stanza = bytes(buffer[:end])
        del buffer[: end + 2]
        yield parse_response(stanza)
