"""Unit tests for scan-dataset serialization."""

import pytest

from repro.scan.detect import NolistingDetector
from repro.scan.population import PopulationConfig, SyntheticInternet
from repro.scan.scanner import DNSScanner, SMTPScanner
from repro.scan.serialize import (
    ScanFormatError,
    dump_dns_scan,
    dump_smtp_scan,
    load_dns_scan,
    load_smtp_scan,
)
from repro.sim.rng import RandomStream


@pytest.fixture(scope="module")
def captures():
    internet = SyntheticInternet(PopulationConfig(num_domains=400), seed=19)
    scanner = DNSScanner(
        internet, glue_elision_rate=0.2, rng=RandomStream(19, "ser")
    )
    dns = scanner.scan(1)
    smtp = SMTPScanner(internet).scan(1)
    return internet, dns, smtp


class TestDNSScanRoundtrip:
    def test_roundtrip_preserves_observations(self, captures):
        _, dns, _ = captures
        restored = load_dns_scan(dump_dns_scan(dns))
        assert restored.scan_index == dns.scan_index
        assert restored.num_domains == dns.num_domains
        assert restored.num_unresolved_mx == dns.num_unresolved_mx
        for domain, observation in dns.observations.items():
            other = restored.get(domain)
            assert other is not None
            assert other.nxdomain == observation.nxdomain
            assert [
                (r.preference, r.exchange, r.address) for r in other.sorted_mx()
            ] == [
                (r.preference, r.exchange, r.address)
                for r in observation.sorted_mx()
            ]

    def test_header_required(self):
        with pytest.raises(ScanFormatError):
            load_dns_scan("garbage")

    def test_malformed_line_rejected(self):
        with pytest.raises(ScanFormatError):
            load_dns_scan("# repro-dns-scan v1\nonlyonefield\n")

    def test_unknown_status_rejected(self):
        with pytest.raises(ScanFormatError):
            load_dns_scan("# repro-dns-scan v1\nd.example weird\n")

    def test_empty_dataset(self):
        from repro.scan.datasets import DNSScanDataset

        restored = load_dns_scan(dump_dns_scan(DNSScanDataset(scan_index=3)))
        assert restored.num_domains == 0
        assert restored.scan_index == 3


class TestSMTPScanRoundtrip:
    def test_roundtrip(self, captures):
        _, _, smtp = captures
        restored = load_smtp_scan(dump_smtp_scan(smtp))
        assert restored.scan_index == smtp.scan_index
        assert restored.probed == smtp.probed
        assert restored.listening == smtp.listening

    def test_header_required(self):
        with pytest.raises(ScanFormatError):
            load_smtp_scan("nope")


class TestOfflinePipeline:
    def test_detection_from_serialized_files(self):
        # The full two-scan pipeline run purely from dumped captures must
        # agree with the live pipeline.
        internet = SyntheticInternet(
            PopulationConfig(num_domains=600), seed=23
        )
        scanner = DNSScanner(internet, glue_elision_rate=0.0, rng=None)
        smtp_scanner = SMTPScanner(internet)
        dns_a, dns_b = scanner.scan(0), scanner.scan(1)
        smtp_a, smtp_b = smtp_scanner.scan(0), smtp_scanner.scan(1)

        live = NolistingDetector(dns_a, smtp_a, dns_b, smtp_b).summarize()
        offline = NolistingDetector(
            load_dns_scan(dump_dns_scan(dns_a)),
            load_smtp_scan(dump_smtp_scan(smtp_a)),
            load_dns_scan(dump_dns_scan(dns_b)),
            load_smtp_scan(dump_smtp_scan(smtp_b)),
        ).summarize()
        assert offline.counts == live.counts
        assert offline.total_domains == live.total_domains
