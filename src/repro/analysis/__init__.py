"""Analysis helpers: CDFs, summary statistics and ASCII tables."""

from .cdf import EmpiricalCDF, ascii_cdf, ks_distance
from .stats import Summary, fraction_within, histogram, summarize
from .tables import (
    CHECK,
    CROSS,
    format_percent,
    format_seconds,
    mark,
    render_table,
)
from .timeseries import (
    WEEK,
    TimeBin,
    bin_events,
    rate_series,
    rate_stability,
)

__all__ = [
    "CHECK",
    "CROSS",
    "EmpiricalCDF",
    "Summary",
    "TimeBin",
    "WEEK",
    "ascii_cdf",
    "bin_events",
    "rate_series",
    "rate_stability",
    "format_percent",
    "format_seconds",
    "fraction_within",
    "histogram",
    "ks_distance",
    "mark",
    "render_table",
    "summarize",
]
