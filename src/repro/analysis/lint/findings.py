"""Finding and severity types for the determinism linter.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain data — checkers yield them, the framework filters them against
inline suppressions and the baseline, and the reporters render them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    Every severity gates the lint run (the exit code does not distinguish
    them); the level is for human triage and for the JSON report.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one ``file:line``."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    #: Optional free-form context (e.g. the offending name); JSON-able.
    extra: Dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used to match a finding against the baseline.

        Deliberately excludes the line number: grandfathered findings stay
        grandfathered when unrelated edits shift them up or down a file.
        """
        return (self.rule, self.path, self.message)

    def to_json(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.extra:
            document["extra"] = self.extra
        return document

    def __str__(self) -> str:
        return f"{self.location}: {self.rule} [{self.severity}] {self.message}"
