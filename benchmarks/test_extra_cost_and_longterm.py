"""Extension bench: greylisting resource costs and long-term stability.

§VI: the techniques "have a cost for the system (disk space and
computation resources) and for the Internet community at large (increased
traffic and bandwidth)".  This bench prices a four-month deployment at
several thresholds, and checks the Sochor-style long-term finding that
effectiveness stays flat over the window.
"""

from repro.analysis.tables import format_seconds, render_table
from repro.core.longterm import run_longterm_analysis
from repro.greylist.cost import measure_cost
from repro.maillog.university import DeploymentConfig, UniversityDeployment

from _util import emit

THRESHOLDS = (5.0, 300.0, 21600.0)


def run_all():
    costs = []
    for threshold in THRESHOLDS:
        config = DeploymentConfig(threshold=threshold, num_messages=1000)
        result = UniversityDeployment(config, seed=5).run()
        costs.append((threshold, measure_cost(result.policy), result))
    longterm = run_longterm_analysis(num_messages=1500)
    return costs, longterm


def test_cost_and_longterm(benchmark):
    costs, longterm = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = render_table(
        headers=(
            "Threshold",
            "Decisions",
            "Deferrals",
            "Extra connections/delivery",
            "Extra KiB",
            "Triplet DB KiB",
        ),
        rows=[
            (
                format_seconds(threshold),
                report.decisions,
                report.deferrals,
                f"{report.extra_connections_per_delivery:.2f}",
                f"{report.extra_bytes / 1024:.1f}",
                f"{report.db_bytes / 1024:.1f}",
            )
            for threshold, report, _ in costs
        ],
        title="Greylisting cost of a 4-month, 1000-message deployment",
    )
    emit("Cost — what the §VI price tag looks like", table)

    # Higher thresholds force more deferrals -> more induced traffic.
    deferrals = [report.deferrals for _, report, _ in costs]
    assert deferrals[0] <= deferrals[1] <= deferrals[2]
    extra = [report.extra_bytes for _, report, _ in costs]
    assert extra[0] <= extra[2]
    # Every configuration pays a non-trivial connection overhead.
    for _, report, _ in costs:
        assert report.extra_connections_per_delivery >= 1.0
        assert report.db_entries > 0

    # Long-term stability: weekly delivery rate flat over four months.
    emit(
        "Long-term — weekly delivery rate",
        "\n".join(
            f"  week {i:>2}: {b.rate:.2f} ({b.count} messages)"
            for i, b in enumerate(longterm.weekly_delivery)
            if b.rate is not None
        ),
    )
    assert longterm.weeks_observed >= 16
    assert longterm.delivery_stability < 0.15
