"""Tests for the Figures 3-4 greylisting experiments."""

import pytest

from repro.analysis.cdf import ks_distance
from repro.botnet.families import CUTWAIL, DARKMAILER, KELIHOS
from repro.core.greylist_experiment import (
    PAPER_THRESHOLDS,
    run_greylist_experiment,
    run_kelihos_threshold_sweep,
)


@pytest.fixture(scope="module")
def sweep():
    return run_kelihos_threshold_sweep(num_messages=50)


class TestKelihosSweep:
    def test_paper_thresholds(self):
        assert PAPER_THRESHOLDS == (5.0, 300.0, 21600.0)

    def test_kelihos_defeats_every_threshold(self, sweep):
        for result in sweep:
            assert not result.blocked
            assert result.delivered == result.num_messages

    def test_figure3_curves_similar(self, sweep):
        # "The similarity between the two curves clearly shows that the
        # malware is not able to take advantage of a shorter threshold."
        res5, res300, _ = sweep
        distance = ks_distance(res5.delay_cdf(), res300.delay_cdf())
        assert distance <= 0.2

    def test_minimum_retry_floor(self, sweep):
        # "designed to retry ... after a minimum delay of 300 seconds" —
        # even at a 5 s threshold no delivery happens before 300 s.
        res5 = sweep[0]
        assert min(res5.delivery_delays) >= 300.0

    def test_most_deliveries_in_first_retry_window(self, sweep):
        res300 = sweep[1]
        cdf = res300.delay_cdf()
        assert cdf.at(600.0) >= 0.5  # the 300-600 s cluster dominates

    def test_figure4_failed_attempt_peaks(self, sweep):
        res21600 = sweep[2]
        failed_ages = [p.age for p in res21600.failed_points()]
        in_first_peak = sum(1 for a in failed_ages if 300 <= a < 1000)
        in_mid_band = sum(1 for a in failed_ages if 1000 <= a < 20000)
        assert in_first_peak > 0
        assert in_mid_band > 0
        # No failed attempt can lie above the threshold: the triplet would
        # have passed.
        assert all(a < 21600 + 1 for a in failed_ages)

    def test_figure4_deliveries_above_threshold(self, sweep):
        res21600 = sweep[2]
        delivered_ages = [p.age for p in res21600.delivered_points()]
        assert delivered_ages
        assert all(a >= 21600.0 for a in delivered_ages)
        # The long-haul retry cluster puts most deliveries past 80 ks.
        assert max(delivered_ages) >= 80000.0

    def test_retransmission_gaps_show_the_three_modes(self, sweep):
        res21600 = sweep[2]
        gaps = res21600.retransmission_gaps()
        assert gaps
        # Every gap falls into one of the calibrated Kelihos retry modes.
        for gap in gaps:
            assert (
                300 <= gap <= 600
                or 4000 <= gap <= 6000
                or 80000 <= gap <= 90000
            ), gap

    def test_single_campaign_control(self, sweep):
        # §V.A: the unprotected control mailboxes prove a single spam task.
        for result in sweep:
            assert result.campaigns_seen == 1
            assert result.unprotected_deliveries >= 1


class TestFireAndForgetFamilies:
    def test_cutwail_blocked_at_default_threshold(self):
        result = run_greylist_experiment(CUTWAIL, 300.0, num_messages=10)
        assert result.blocked
        assert result.delivery_delays == []

    def test_darkmailer_blocked_even_at_tiny_threshold(self):
        result = run_greylist_experiment(DARKMAILER, 5.0, num_messages=10)
        assert result.blocked

    def test_unprotected_mailboxes_still_receive_spam(self):
        # Greylisting blocked the protected recipients, but the exempt
        # control addresses prove the campaign was live.
        result = run_greylist_experiment(CUTWAIL, 300.0, num_messages=10)
        assert result.unprotected_deliveries >= 1


class TestResultAccessors:
    def test_delivery_rate(self):
        result = run_greylist_experiment(KELIHOS, 300.0, num_messages=10)
        assert result.delivery_rate == 1.0
        blocked = run_greylist_experiment(CUTWAIL, 300.0, num_messages=10)
        assert blocked.delivery_rate == 0.0

    def test_deterministic_given_seed(self):
        a = run_greylist_experiment(KELIHOS, 300.0, num_messages=10, seed=3)
        b = run_greylist_experiment(KELIHOS, 300.0, num_messages=10, seed=3)
        assert a.delivery_delays == b.delivery_delays
