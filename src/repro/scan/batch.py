"""Equivalence-class batch engine for the adoption scan (paper §IV.A).

The per-object shard task builds an authoritative DNS zone, a resolver and
a banner-grab probe for every domain — then throws almost all of it away,
because classification only consumes a handful of bits per domain: the MX
topology shape, which records arrived without glue, and which addresses
answered on port 25.  This module computes exactly those bits directly
from the deterministic draw streams, files every domain of a chunk under
its outcome-determining *class key*

    (ground-truth category, scan-0 shape, scan-1 shape,
     coverage and repair contributions)

and runs the **real** classifiers (:func:`repro.scan.detect.
classify_single_scan` / :func:`~repro.scan.detect.classify_two_scans`)
once per distinct shape on a synthesized representative observation.  The
result dict is bit-for-bit identical to
:func:`repro.runner.shards.adoption_shard_task` for the same payload — a
property the integration suite asserts over seeds, fault plans and
planted populations.

Why the replay is sound
-----------------------
Every random decision the object path makes is either

* a *generation* draw from ``seed -> "population" -> "chunk:<k>"`` in a
  fixed per-domain order (replayed here verbatim, in lockstep with
  :meth:`~repro.scan.population.SyntheticInternet._generate_chunk`),
* a *fault* draw keyed purely by ``(fault seed, kind, epoch, entity
  label)`` (stateless: skipping draws the verdict never consumes cannot
  perturb any other draw), or
* a *glue-elision* draw from the per-domain stream
  ``"elision:<scan>:<domain>"`` consumed once per glue-carrying record in
  record order (replayed verbatim).

Addresses are arithmetic, not allocated: chunk ``k`` owns the address
slice ``base + k * stride`` and hands addresses out sequentially, so the
replay tracks a counter instead of an :class:`~repro.net.address.
AddressPool`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..faults.model import FaultPlan, fault_from_params
from ..net.address import IPv4Address
from ..sim.batch import BatchCounters, EquivalenceClassIndex
from ..sim.rng import RandomStream
from .datasets import DomainObservation, MXObservation, SMTPScanDataset
from .detect import (
    DomainClass,
    SingleScanVerdict,
    classify_single_scan,
    classify_two_scans,
)
from .population import (
    CATEGORY_ORDER,
    DomainCategory,
    PopulationConfig,
    PopulationPlan,
    population_from_params,
)

#: One MX record of a replayed domain: hostname, preference, address value
#: (``None`` for a dangling/ghost exchange) — mirrors ``DomainTruth.mx_hosts``.
_Record = Tuple[str, int, Optional[int]]

#: A single-scan shape: either ``("mxfault", kind)`` or
#: ``(n_records, n_resolved, primary_up, secondary_up)``.
_Shape = Tuple[Any, ...]


class _DomainSpec:
    """The replayed ground truth of one domain (no zones, no pools)."""

    __slots__ = (
        "name",
        "category",
        "records",
        "outage_scan",
        "persistent",
        "pool_apex",
    )

    def __init__(
        self,
        name: str,
        category: DomainCategory,
        records: List[_Record],
        outage_scan: Optional[int],
        persistent: bool,
        pool_apex: Optional[str] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.records = records
        self.outage_scan = outage_scan
        self.persistent = persistent
        self.pool_apex = pool_apex


def _replay_chunk(
    plan: PopulationPlan, config: PopulationConfig, seed: int, chunk_index: int
) -> List[_DomainSpec]:
    """Replay one chunk's generation draws without building the world.

    The columnar module owns the single replay implementation
    (:func:`repro.scan.columnar.build_columnar_chunk`, draw-for-draw
    lockstep with :meth:`~repro.scan.population.SyntheticInternet.
    _generate_chunk`); this wrapper reconstitutes its columns as the
    per-domain specs the shape computation consumes.
    """
    from .columnar import (
        NO_OUTAGE,
        build_columnar_chunk,
        chunk_records,
        pool_apex_of,
    )

    chunk = build_columnar_chunk(plan, config, seed, chunk_index)
    specs: List[_DomainSpec] = []
    for i in range(chunk.n):
        name = plan.name_of(chunk.start + i)
        outage = int(chunk.outage_scan[i])
        specs.append(
            _DomainSpec(
                name=name,
                category=CATEGORY_ORDER[int(chunk.category[i])],
                records=chunk_records(chunk, i, name),
                outage_scan=None if outage == NO_OUTAGE else outage,
                persistent=bool(chunk.persistent[i]),
                pool_apex=pool_apex_of(chunk, i),
            )
        )
    return specs


def _scan_shape(
    spec: _DomainSpec,
    scan_index: int,
    faults: Optional[FaultPlan],
    elision_root: Optional[RandomStream],
    glue_elision_rate: float,
) -> Tuple[_Shape, int]:
    """One domain's single-scan shape plus its repaired-record count."""
    if faults is not None:
        kind = faults.dns_fault(spec.name, scan_index)
        if kind is None and faults.zone_lame(spec.name):
            kind = "servfail"
        if kind is not None:
            return ("mxfault", kind), 0

    # Which records' glue survives the capture (A-query faults, then the
    # scanner's elision stream — one draw per glue-carrying record, in
    # record order, exactly as DNSScanner.scan consumes them).  Provider
    # pool exchangers live in their own zone, so their glue A query can
    # additionally hit that zone's lame delegation — a fault the domain's
    # own MX query never sees.
    pool_lame = (
        faults is not None
        and spec.pool_apex is not None
        and faults.zone_lame(spec.pool_apex)
    )
    glue_present: List[bool] = []
    for hostname, _, address in spec.records:
        if address is None:
            glue_present.append(False)  # ghost exchange: never any glue
        elif pool_lame:
            glue_present.append(False)
        elif faults is not None and faults.dns_fault(hostname, scan_index):
            glue_present.append(False)
        else:
            glue_present.append(True)
    if elision_root is not None:
        elision_rng = elision_root.split(f"elision:{scan_index}:{spec.name}")
        for i, present in enumerate(glue_present):
            if present and elision_rng.random() < glue_elision_rate:
                glue_present[i] = False

    n_records = len(spec.records)
    # The parallel re-resolve repairs every non-ghost record against a
    # healthy resolver, so post-repair resolution == "has an A record".
    n_resolved = sum(1 for (_, _, address) in spec.records if address is not None)
    repaired = sum(
        1
        for (_, _, address), present in zip(spec.records, glue_present)
        if address is not None and not present
    )

    if n_records < 2 or n_resolved < 2:
        # ONE_MX / MISCONFIGURED shapes never consult the banner grab.
        return (n_records, n_resolved, False, False), repaired

    primary_up = _address_up(spec, spec.records[0][2], scan_index, faults, True)
    secondary_up = any(
        _address_up(spec, address, scan_index, faults, False)
        for (_, _, address) in spec.records[1:]
    )
    return (n_records, n_resolved, primary_up, secondary_up), repaired


def _address_up(
    spec: _DomainSpec,
    address: Optional[int],
    scan_index: int,
    faults: Optional[FaultPlan],
    is_primary: bool,
) -> bool:
    """Is this MX address in the scan's listening set?"""
    if address is None:
        return False
    if is_primary:
        if spec.category is DomainCategory.NOLISTING:
            return False  # primary never listens — that is nolisting
        if spec.persistent or spec.outage_scan == scan_index:
            return False
    if faults is not None and faults.smtp_down(
        str(IPv4Address(address)), scan_index
    ):
        return False
    return True


def _shape_verdict(shape: _Shape) -> SingleScanVerdict:
    """Classify one shape by driving the *real* single-scan classifier.

    A representative observation (and, when the shape consults it, a
    representative banner-grab set) is synthesized so the decision runs
    through :func:`classify_single_scan` unmodified — the batch engine
    multiplies the classifier, it never reimplements it.
    """
    observation = DomainObservation(domain="representative.example")
    smtp = SMTPScanDataset(scan_index=0)
    if shape[0] == "mxfault":
        if shape[1] == "timeout":
            observation.timeout = True
        else:
            observation.servfail = True
        return classify_single_scan(observation, smtp)
    n_records, n_resolved, primary_up, secondary_up = shape
    for i in range(n_records):
        resolved = i < n_resolved
        address = IPv4Address(0x7F000001 + i) if resolved else None
        observation.mx.append(
            MXObservation(
                preference=10 * (i + 1),
                exchange=f"mx{i}.representative.example",
                address=address,
            )
        )
    if n_resolved >= 1 and primary_up:
        smtp.add(IPv4Address(0x7F000001))
    if n_resolved >= 2 and secondary_up:
        smtp.add(IPv4Address(0x7F000002))
    return classify_single_scan(observation, smtp)


def batched_adoption_shard(
    payload: Dict[str, Any], counters: Optional[BatchCounters] = None
) -> Dict[str, Any]:
    """Batched equivalent of :func:`repro.runner.shards.adoption_shard_task`.

    Accepts the same payload (minus the ``engine`` discriminator) and
    returns the identical result dict.  ``counters``, when given, is
    filled with the run's collapse accounting.
    """
    from ..core.adoption import _TRUTH_TO_CLASS

    config = population_from_params(payload["population"])
    seed = int(payload["seed"])
    chunk_index = int(payload["chunk"])
    glue_elision_rate = float(payload["glue_elision_rate"])
    faults = None
    if payload.get("faults") is not None:
        faults = FaultPlan(fault_from_params(payload["faults"]))

    plan = PopulationPlan(config, seed)
    specs = _replay_chunk(plan, config, seed, chunk_index)
    elision_root = (
        RandomStream(seed, "adoption-scan") if glue_elision_rate > 0 else None
    )

    index: EquivalenceClassIndex[Tuple[Any, ...], str] = EquivalenceClassIndex()
    for spec in specs:
        shape_a, repaired_a = _scan_shape(
            spec, 0, faults, elision_root, glue_elision_rate
        )
        shape_b, repaired_b = _scan_shape(
            spec, 1, faults, elision_root, glue_elision_rate
        )
        # Coverage figures come from the scan-0 capture only; a failed MX
        # query contributes an empty observation.
        if shape_a[0] == "mxfault":
            servers = addresses = 0
        else:
            servers = len(spec.records)
            addresses = sum(
                1 for (_, _, address) in spec.records if address is not None
            )
        key = (
            spec.category.value,
            shape_a,
            shape_b,
            servers,
            addresses,
            repaired_a + repaired_b,
        )
        index.add(key, spec.name)

    shape_memo: Dict[_Shape, SingleScanVerdict] = {}
    pair_memo: Dict[
        Tuple[SingleScanVerdict, SingleScanVerdict], DomainClass
    ] = {}
    representative_runs = 0

    def verdict_of(shape: _Shape) -> SingleScanVerdict:
        nonlocal representative_runs
        verdict = shape_memo.get(shape)
        if verdict is None:
            verdict = _shape_verdict(shape)
            shape_memo[shape] = verdict
            representative_runs += 1
        return verdict

    counts = {c: 0 for c in DomainClass}
    total = flapped = servers_covered = addresses_covered = repaired = 0
    confusion = {"correct": 0, "wrong": 0}
    nolisting_domains: List[str] = []

    for key, members in index.classes():
        category_value, shape_a, shape_b, servers, addresses, rep = key
        cardinality = len(members)
        verdict_a = verdict_of(shape_a)
        verdict_b = verdict_of(shape_b)
        pair = (verdict_a, verdict_b)
        domain_class = pair_memo.get(pair)
        if domain_class is None:
            domain_class = classify_two_scans(
                "representative.example", verdict_a, verdict_b
            ).domain_class
            pair_memo[pair] = domain_class
            representative_runs += 1
        total += cardinality
        counts[domain_class] += cardinality
        if verdict_a != verdict_b:
            flapped += cardinality
        servers_covered += servers * cardinality
        addresses_covered += addresses * cardinality
        repaired += rep * cardinality
        truth_class = _TRUTH_TO_CLASS[DomainCategory(category_value)]
        if domain_class is truth_class:
            confusion["correct"] += cardinality
        else:
            confusion["wrong"] += cardinality
        if domain_class is DomainClass.NOLISTING:
            nolisting_domains.extend(members)

    if counters is not None:
        counters.members += index.num_members
        counters.classes += index.num_classes
        counters.representative_runs += representative_runs

    return {
        "total": total,
        "counts": {c.value: counts.get(c, 0) for c in DomainClass},
        "flapped": flapped,
        "servers": servers_covered,
        "addresses": addresses_covered,
        "repaired": repaired,
        "confusion": confusion,
        "nolisting_domains": sorted(nolisting_domains),
    }
