"""The ten webmail providers of Table III.

Retry ages are the paper's measured attempt timestamps (converted from the
``min:sec`` DELAYS column); pool sizes come from the SAME IP column (the
parenthesised counts).  hotmail and yandex settle into fixed cadences after
an explicit warm-up ("...every 4 minutes...", "...every 15:30 minutes..."),
so their tails are generated from the measured cadence rather than listed.
mail.ru's farm revisits its earliest address on the final attempt — without
that reuse its rotation would never accumulate six hours on one triplet, and
it would not have delivered (which it did).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .provider import ProviderSpec


def _mmss(*stamps: str) -> Tuple[float, ...]:
    """Convert ``mm:ss`` stamps into seconds."""
    ages = []
    for stamp in stamps:
        minutes, _, seconds = stamp.partition(":")
        ages.append(float(int(minutes) * 60 + int(seconds)))
    return tuple(ages)


GMAIL = ProviderSpec(
    name="gmail.com",
    retry_ages=_mmss(
        "6:02", "29:02", "56:36", "98:44", "162:03", "229:44", "309:05", "434:46"
    ),
    ip_pool_size=7,
    # Keeps going past the measured window (gmail retries for days); the
    # measured gaps roughly x1.4 each time, continue at the last gap.
    continuation_interval=_mmss("125:41")[0],
)

YAHOO = ProviderSpec(
    name="yahoo.co.uk",
    retry_ages=_mmss(
        "2:07", "5:39", "12:58", "27:16", "55:13", "109:35", "216:47", "430:36"
    ),
    ip_pool_size=1,
    continuation_interval=_mmss("213:49")[0],
)

# hotmail: 7 explicit warm-up retries, then a 4-minute hammer; the measured
# cadence works out to (362:11 - 16:10) / 86 = 241.4 s per attempt, ending at
# attempt 94 when a 6 h threshold finally passes.
_HOTMAIL_WARMUP = _mmss("1:01", "2:03", "3:04", "5:06", "8:07", "12:08", "16:10")
_HOTMAIL_CADENCE = (_mmss("362:11")[0] - _HOTMAIL_WARMUP[-1]) / 86.0

HOTMAIL = ProviderSpec(
    name="hotmail.com",
    retry_ages=_HOTMAIL_WARMUP,
    ip_pool_size=1,
    continuation_interval=_HOTMAIL_CADENCE,
    max_attempts=2000,
)

QQ = ProviderSpec(
    name="qq.com",
    retry_ages=_mmss(
        "5:05", "5:11", "5:17", "6:19", "8:22", "12:25", "20:29", "52:31",
        "84:35", "144:42", "204:56"
    ),
    ip_pool_size=2,
    continuation_interval=None,  # gives up after 12 attempts (~3.4 h)
    max_attempts=12,
)

MAILRU = ProviderSpec(
    name="mail.ru",
    retry_ages=_mmss(
        "1:18", "19:15", "49:14", "79:49", "113:20", "154:18", "187:53",
        "235:20", "271:03", "305:50", "340:38", "373:45"
    ),
    ip_pool_size=7,
    # Observed reuse pattern: walks the pool, then revisits addresses 2-6,
    # and lands back on the very first address for the final attempt — the
    # reuse that makes delivery possible under a 6 h threshold.
    ip_sequence=(0, 1, 2, 3, 4, 5, 6, 2, 3, 4, 5, 6, 0),
    continuation_interval=_mmss("35:00")[0],
)

# yandex: warm-up then a measured 15:25 cadence ((369:21 - 61:01) / 20).
_YANDEX_WARMUP = _mmss("1:05", "2:58", "6:53", "14:55", "30:28", "45:41", "61:01")
_YANDEX_CADENCE = (_mmss("369:21")[0] - _YANDEX_WARMUP[-1]) / 20.0

YANDEX = ProviderSpec(
    name="yandex.com",
    retry_ages=_YANDEX_WARMUP,
    ip_pool_size=1,
    continuation_interval=_YANDEX_CADENCE,
    max_attempts=500,
)

MAILCOM = ProviderSpec(
    name="mail.com",
    retry_ages=_mmss(
        "5:02", "12:37", "23:59", "41:03", "66:38", "105:01", "162:35",
        "248:56", "378:28"
    ),
    ip_pool_size=2,
    continuation_interval=_mmss("129:32")[0],
)

GMX = ProviderSpec(
    name="gmx.com",
    retry_ages=_mmss(
        "5:01", "12:33", "23:50", "40:46", "66:09", "104:14", "161:22",
        "247:04", "375:36"
    ),
    ip_pool_size=3,
    continuation_interval=_mmss("128:32")[0],
)

AOL = ProviderSpec(
    name="aol.com",
    retry_ages=_mmss("5:32", "11:32", "21:32", "31:32"),
    ip_pool_size=1,
    continuation_interval=None,  # abandons after only ~30 minutes (!)
    max_attempts=5,
)

INDIA = ProviderSpec(
    name="india.com",
    retry_ages=_mmss(
        "6:21", "16:21", "36:21", "76:21", "146:22", "216:21", "286:21",
        "356:21", "426:21"
    ),
    ip_pool_size=1,
    continuation_interval=_mmss("70:00")[0],
)

#: Table III row order.
PROVIDERS: Tuple[ProviderSpec, ...] = (
    GMAIL,
    YAHOO,
    HOTMAIL,
    QQ,
    MAILRU,
    YANDEX,
    MAILCOM,
    GMX,
    AOL,
    INDIA,
)

PROVIDER_BY_NAME: Dict[str, ProviderSpec] = {p.name: p for p in PROVIDERS}
