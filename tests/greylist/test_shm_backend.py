"""Shared-memory backend specifics: layout, degradation, concurrency.

The generic interface contract is covered by the conformance suite in
``test_backends.py`` (parametrized over every backend, shm included) and
the bit-for-bit equivalence suite.  This module tests what only the
shared table has: fixed capacity with spill-on-full, oversize-key
handling, tombstone recycling, seqlock torn-record repair, the
insertion-order contract under recycling, and cross-process contention
through real forked processes (POSIX record locks are per-process, so
in-process "concurrency" would prove nothing).
"""

import multiprocessing
import struct

import pytest

from repro.greylist.shm import (
    DEFAULT_CAPACITY,
    HEADER_SIZE,
    MAX_KEY_BYTES,
    PROBE_WINDOW,
    RECORD_SIZE,
    SharedMemoryBackend,
)
from repro.greylist.store import TripletEntry
from repro.greylist.triplet import Triplet
from repro.net.address import IPv4Address

DAY = 86400.0
RETRY = 2 * DAY
LIFETIME = 35 * DAY


def triplet(i=0, sender=None):
    return Triplet(
        IPv4Address.parse(f"203.0.{i // 250}.{i % 250 + 1}"),
        sender or f"s{i}@x.example",
        "r@y.example",
    )


def entry(i=0, first=0.0, last=None, attempts=1, passed=False,
          passed_at=None, sender=None):
    return TripletEntry(
        triplet=triplet(i, sender=sender),
        first_seen=first,
        last_seen=last if last is not None else first,
        attempts=attempts,
        passed=passed,
        passed_at=passed_at,
    )


@pytest.fixture
def small():
    """A deliberately tiny table (one probe window) to force pressure."""
    backend = SharedMemoryBackend(capacity=PROBE_WINDOW)
    yield backend
    backend.close()


@pytest.fixture
def table():
    backend = SharedMemoryBackend(capacity=1024)
    yield backend
    backend.close()


class TestLayout:
    def test_capacity_is_fixed_and_readable(self, table):
        assert table.capacity == 1024
        assert table.segment.startswith("psm_")

    def test_record_size_covers_struct(self):
        # 4 spare bytes of slack; a format change that overflows the
        # slot must fail loudly here, not corrupt neighbours silently.
        assert RECORD_SIZE >= struct.calcsize("<IBBBxQQIIdddHH120s120s")
        assert HEADER_SIZE >= struct.calcsize("<8sQQQQQQ")

    def test_default_capacity_sane(self):
        assert DEFAULT_CAPACITY >= PROBE_WINDOW


class TestSpill:
    def test_insert_past_capacity_spills_not_corrupts(self, small):
        for i in range(PROBE_WINDOW * 3):
            small.put(entry(i))
        assert len(small) <= small.capacity
        assert small.spill_count > 0
        # Every stored entry is still intact and readable.
        for stored in small.scan():
            assert stored.attempts == 1

    def test_record_attempt_on_full_table_still_answers(self, small):
        for i in range(PROBE_WINDOW * 3):
            result, expired = small.record_attempt(
                triplet(i), 100.0, RETRY, LIFETIME
            )
            # A spilled attempt is answered from a transient entry: the
            # client sees an ordinary first-contact deferral.
            assert result.attempts == 1
            assert result.first_seen == 100.0
            assert expired is None

    def test_oversize_sender_takes_spill_path(self, table):
        big = "x" * (MAX_KEY_BYTES + 1) + "@y.example"
        oversize = entry(0, sender=big)
        table.put(oversize)
        assert table.get(oversize.triplet) is None
        assert table.delete(oversize.triplet) is False
        assert table.spill_count == 1
        result, expired = table.record_attempt(
            oversize.triplet, 5.0, RETRY, LIFETIME
        )
        assert result.attempts == 1 and expired is None
        assert table.spill_count == 2
        assert len(table) == 0

    def test_max_size_key_is_stored(self, table):
        edge = entry(0, sender="x" * (MAX_KEY_BYTES - 10) + "@y.c")
        assert len(edge.triplet.sender.encode()) <= MAX_KEY_BYTES
        table.put(edge)
        got = table.get(edge.triplet)
        assert got is not None
        assert got.triplet.sender == edge.triplet.sender


class TestTombstones:
    def test_delete_leaves_recyclable_tombstone(self, table):
        table.put(entry(1))
        assert table.delete(triplet(1)) is True
        assert table.tombstone_count == 1
        assert len(table) == 0
        table.put(entry(1))
        assert table.tombstone_count == 0
        assert len(table) == 1

    def test_churn_does_not_consume_small_table(self, small):
        # Insert/delete the same window-full of keys many times over:
        # without recycling this exceeds capacity within two rounds.
        for _ in range(10):
            for i in range(PROBE_WINDOW // 2):
                small.put(entry(i))
            for i in range(PROBE_WINDOW // 2):
                assert small.delete(triplet(i)) is True
        assert len(small) == 0
        assert small.spill_count == 0

    def test_scan_order_survives_recycling(self, table):
        for i in (1, 2, 3):
            table.put(entry(i, first=float(i)))
        table.put(entry(2, first=2.0, attempts=5))  # update keeps position
        assert [e.triplet for e in table.scan()] == [
            triplet(1), triplet(2), triplet(3)
        ]
        table.delete(triplet(1))
        table.put(entry(1, first=9.0))  # delete + re-insert moves to end
        assert [e.triplet for e in table.scan()] == [
            triplet(2), triplet(3), triplet(1)
        ]


class TestSeqlockRepair:
    def _find_slot(self, table, trip):
        """Locate the slot index a live triplet occupies."""
        sender = trip.sender.encode()
        recipient = trip.recipient.encode()
        key_hash = table._hash_key(trip.client.value, sender, recipient)
        home = key_hash % table.capacity
        for step in range(PROBE_WINDOW):
            index = (home + step) % table.capacity
            fields = struct.unpack_from(
                "<IBBBxQQIIdddHH120s120s",
                table._shm.buf,
                HEADER_SIZE + index * RECORD_SIZE,
            )
            if fields[1] == 1 and fields[4] == key_hash:
                return index
        raise AssertionError("triplet not found in table")

    def test_torn_record_is_repaired_to_tombstone(self, table):
        table.put(entry(7))
        index = self._find_slot(table, triplet(7))
        offset = HEADER_SIZE + index * RECORD_SIZE
        # Simulate a writer that died mid-write: odd sequence, forever.
        seq = struct.unpack_from("<I", table._shm.buf, offset)[0]
        struct.pack_into("<I", table._shm.buf, offset, seq | 1)
        # The reader spins out, takes the slot lock, and drops the torn
        # record — the key is simply gone (one extra deferral), reads
        # never hang and never return garbage.
        assert table.get(triplet(7)) is None
        state = struct.unpack_from("<B", table._shm.buf, offset + 4)[0]
        assert state == 2  # tombstone
        final_seq = struct.unpack_from("<I", table._shm.buf, offset)[0]
        assert final_seq % 2 == 0

    def test_even_sequence_untouched_by_reader(self, table):
        table.put(entry(8))
        index = self._find_slot(table, triplet(8))
        offset = HEADER_SIZE + index * RECORD_SIZE
        before = struct.unpack_from("<I", table._shm.buf, offset)[0]
        assert table.get(triplet(8)) is not None
        after = struct.unpack_from("<I", table._shm.buf, offset)[0]
        assert after == before


# ----------------------------------------------------------------------
# Cross-process contention (real processes: fcntl locks are per-process)
# ----------------------------------------------------------------------
def _hammer_attempts(segment, shared_keys, per_process, barrier, out):
    backend = SharedMemoryBackend(segment=segment)
    try:
        barrier.wait()
        for i in range(per_process):
            backend.record_attempt(
                triplet(i % shared_keys), 50.0, RETRY, LIFETIME
            )
        out.put(per_process)
    finally:
        backend.close()


def _mark_some_passed(segment, start, count, barrier, out):
    backend = SharedMemoryBackend(segment=segment)
    try:
        barrier.wait()
        marked = 0
        for i in range(start, start + count):
            backend.record_attempt(triplet(i), 10.0, RETRY, LIFETIME)
            if backend.mark_passed(triplet(i), 20.0):
                marked += 1
        out.put(marked)
    finally:
        backend.close()


def _attempt_after_expiry(segment, keys, barrier, out):
    backend = SharedMemoryBackend(segment=segment)
    try:
        barrier.wait()
        expired = 0
        for i in range(keys):
            _, kind = backend.record_attempt(
                triplet(i), RETRY + 1000.0, RETRY, LIFETIME
            )
            if kind is not None:
                expired += 1
        out.put(expired)
    finally:
        backend.close()


class TestCrossProcessContention:
    WORKERS = 4

    def _run(self, target, args_for):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(self.WORKERS)
        out = ctx.Queue()
        procs = [
            ctx.Process(target=target, args=args_for(w, barrier, out))
            for w in range(self.WORKERS)
        ]
        for proc in procs:
            proc.start()
        results = [out.get(timeout=60) for _ in procs]
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        return results

    def test_attempt_counters_conserved(self):
        """No lost increments: attempts across the table sum exactly."""
        shared_keys, per_process = 16, 300
        backend = SharedMemoryBackend(capacity=1024)
        try:
            self._run(
                _hammer_attempts,
                lambda w, barrier, out: (
                    backend.segment, shared_keys, per_process, barrier, out
                ),
            )
            total = sum(e.attempts for e in backend.scan())
            assert total == self.WORKERS * per_process
            assert len(backend) == shared_keys
            assert backend.spill_count == 0
        finally:
            backend.close()

    def test_no_lost_passes(self):
        """Every acknowledged mark_passed is visible afterwards."""
        per_process = 50
        backend = SharedMemoryBackend(capacity=1024)
        try:
            marked = self._run(
                _mark_some_passed,
                lambda w, barrier, out: (
                    backend.segment, w * per_process, per_process,
                    barrier, out,
                ),
            )
            assert sum(marked) == self.WORKERS * per_process
            assert backend.confirmed_count() == self.WORKERS * per_process
            for stored in backend.scan():
                assert stored.passed and stored.passed_at == 20.0
        finally:
            backend.close()

    def test_expiry_counted_exactly_once(self):
        """Racing workers never resurrect or double-expire a triplet."""
        keys = 32
        backend = SharedMemoryBackend(capacity=1024)
        try:
            for i in range(keys):
                backend.put(entry(i, first=0.0))
            expired = self._run(
                _attempt_after_expiry,
                lambda w, barrier, out: (backend.segment, keys, barrier, out),
            )
            # Exactly one worker per key observed the expiry; the rest
            # saw the freshly re-created entry.
            assert sum(expired) == keys
            for stored in backend.scan():
                # No resurrection: the old incarnation is gone for good.
                assert stored.first_seen == RETRY + 1000.0
                assert not stored.passed
            assert len(backend) == keys
        finally:
            backend.close()
