"""Outbound mail queue and delivery agent.

:class:`QueueManager` is the sending half of a benign MTA: messages enter
the queue, a delivery agent attempts them immediately, and transient
failures are re-scheduled according to the MTA's
:class:`~repro.mta.schedule.RetrySchedule` until delivery, permanent
failure, or queue-lifetime expiry (bounce).

Every attempt is journalled as a :class:`QueueAttempt`, which is what the
Figure 5 deployment analysis and the Table III webmail experiment read.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..sim.events import EventScheduler
from ..smtp.client import AttemptOutcome, AttemptResult, SMTPClient
from ..smtp.message import Message
from .schedule import RetrySchedule

_entry_ids = itertools.count(1)


class QueueEntryState(enum.Enum):
    QUEUED = "queued"
    DELIVERED = "delivered"
    BOUNCED = "bounced"          # permanent failure from remote
    EXPIRED = "expired"          # queue lifetime exceeded, gave up
    ABANDONED = "abandoned"      # schedule ran out of retries


@dataclass
class QueueAttempt:
    """One delivery attempt of one queue entry."""

    timestamp: float
    attempt_number: int
    outcome: AttemptOutcome
    reply_code: Optional[int]


@dataclass
class QueueEntry:
    """One (message, recipient) pair waiting in the queue."""

    message: Message
    recipient: str
    enqueued_at: float
    state: QueueEntryState = QueueEntryState.QUEUED
    attempts: List[QueueAttempt] = field(default_factory=list)
    finished_at: Optional[float] = None
    entry_id: int = field(default_factory=lambda: next(_entry_ids))

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    @property
    def delivery_delay(self) -> Optional[float]:
        """Seconds from enqueue to successful delivery (None if undelivered)."""
        if self.state is not QueueEntryState.DELIVERED:
            return None
        assert self.finished_at is not None
        return self.finished_at - self.enqueued_at

    def attempt_delays(self) -> List[float]:
        """Queue age of each attempt — the Table III 'DELAYS' column."""
        return [a.timestamp - self.enqueued_at for a in self.attempts]


# Called whenever an entry reaches a terminal state.
CompletionCallback = Callable[[QueueEntry], None]


class QueueManager:
    """Retry-driving outbound queue bound to an event scheduler.

    Parameters
    ----------
    scheduler:
        The simulation event loop.
    client:
        The SMTP client used for attempts.  Swap in a multi-IP pool client
        (webmail) or bot client to change sending behaviour.
    schedule:
        Retry timing policy.
    on_complete:
        Optional hook fired when an entry terminates.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        client: SMTPClient,
        schedule: RetrySchedule,
        on_complete: Optional[CompletionCallback] = None,
    ) -> None:
        self.scheduler = scheduler
        self.client = client
        self.schedule = schedule
        self.on_complete = on_complete
        self.entries: List[QueueEntry] = []

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def submit(self, message: Message) -> List[QueueEntry]:
        """Queue a message for all its recipients; first attempt is now."""
        created: List[QueueEntry] = []
        for recipient in message.recipients:
            entry = QueueEntry(
                message=message,
                recipient=recipient,
                enqueued_at=self.scheduler.now,
            )
            self.entries.append(entry)
            created.append(entry)
            self.scheduler.schedule_in(
                0.0,
                lambda e=entry: self._attempt(e),
                label=f"queue:first-attempt:{entry.entry_id}",
            )
        return created

    # ------------------------------------------------------------------
    # Attempt machinery
    # ------------------------------------------------------------------
    def _attempt(self, entry: QueueEntry) -> None:
        if entry.state is not QueueEntryState.QUEUED:
            return
        result: AttemptResult = self.client.send(entry.message, entry.recipient)
        attempt = QueueAttempt(
            timestamp=self.scheduler.now,
            attempt_number=entry.attempt_count + 1,
            outcome=result.outcome,
            reply_code=result.reply.code if result.reply else None,
        )
        entry.attempts.append(attempt)

        if result.succeeded:
            self._finish(entry, QueueEntryState.DELIVERED)
            return
        if result.outcome is AttemptOutcome.BOUNCED:
            self._finish(entry, QueueEntryState.BOUNCED)
            return
        if result.outcome in (
            AttemptOutcome.DNS_FAILURE,
            AttemptOutcome.CONNECTION_RESET,
        ):
            # Transient routing/session problems: retry per schedule, like
            # any deferral — a reset mid-dialogue is not a rejection.
            pass

        queue_age = self.scheduler.now - entry.enqueued_at
        delay = self.schedule.next_delay(entry.attempt_count, queue_age)
        if delay is None:
            terminal = (
                QueueEntryState.EXPIRED
                if (
                    self.schedule.max_queue_time is not None
                    and queue_age >= self.schedule.max_queue_time
                )
                else QueueEntryState.ABANDONED
            )
            self._finish(entry, terminal)
            return
        self.scheduler.schedule_in(
            delay,
            lambda e=entry: self._attempt(e),
            label=f"queue:retry:{entry.entry_id}:{entry.attempt_count + 1}",
        )

    def _finish(self, entry: QueueEntry, state: QueueEntryState) -> None:
        entry.state = state
        entry.finished_at = self.scheduler.now
        if self.on_complete is not None:
            self.on_complete(entry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entries_in_state(self, state: QueueEntryState) -> List[QueueEntry]:
        return [e for e in self.entries if e.state is state]

    @property
    def delivered(self) -> List[QueueEntry]:
        return self.entries_in_state(QueueEntryState.DELIVERED)

    @property
    def pending(self) -> List[QueueEntry]:
        return self.entries_in_state(QueueEntryState.QUEUED)

    def __repr__(self) -> str:
        return (
            f"QueueManager(entries={len(self.entries)}, "
            f"delivered={len(self.delivered)}, pending={len(self.pending)})"
        )
