"""Internet-scale synthesis: adoption rates x family mix -> spam blocked.

The paper measures two things separately: *who deploys* the techniques
(Figure 2) and *what each technique blocks* (Table II).  This experiment
composes them: a small internet of receiver domains — some greylisted,
some nolisted, some undefended — receives a spam wave whose family mix
follows Table I, and we measure the fraction of spam actually delivered.

Because every delivery is simulated end to end (DNS, MX walking, retries,
triplets), the measured block rate can be checked against the analytic
prediction ``sum_family share_f x P(defended domain blocks f)`` — closing
the loop between the paper's adoption and effectiveness halves, and
answering "what if adoption grew?" by sweeping the deployment rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..botnet.behavior import MXBehavior, defeats_nolisting
from ..botnet.families import FAMILIES, FamilyProfile
from ..botnet.retry import FireAndForget
from ..dns.nolisting import setup_nolisting, setup_single_mx
from ..dns.resolver import StubResolver
from ..dns.zone import ZoneStore
from ..greylist.policy import GreylistPolicy
from ..net.address import AddressPool, IPv4Network
from ..net.network import VirtualInternet
from ..sim.batch import BatchCounters, SessionOutcomeCache
from ..sim.clock import Clock
from ..sim.events import EventScheduler
from ..sim.rng import RandomStream
from ..smtp.message import Message
from ..smtp.server import ConnectionPolicy, SMTPServer


@dataclass
class InternetScaleResult:
    """Measured spam flow through a mixed-deployment internet."""

    num_domains: int
    greylisting_rate: float
    nolisting_rate: float
    spam_sent: int
    spam_delivered: int
    per_family_delivered: Dict[str, int] = field(default_factory=dict)
    per_family_sent: Dict[str, int] = field(default_factory=dict)
    predicted_block_rate: float = 0.0

    @property
    def block_rate(self) -> float:
        if self.spam_sent == 0:
            return 0.0
        return 1.0 - self.spam_delivered / self.spam_sent

    def family_delivery_rate(self, family: str) -> float:
        sent = self.per_family_sent.get(family, 0)
        if sent == 0:
            return 0.0
        return self.per_family_delivered.get(family, 0) / sent


def _family_blocked_probability(
    family: FamilyProfile, greylisting_rate: float, nolisting_rate: float
) -> float:
    """Analytic P(block) for one family under random deployment.

    Greylisting blocks non-retrying families; nolisting blocks
    primary-only families.  Deployments are disjoint in this model
    (a domain is nolisted XOR possibly greylisted).
    """
    blocked = 0.0
    if not defeats_nolisting(family.mx_behavior):
        blocked += nolisting_rate
    if not family.retries:
        blocked += greylisting_rate
    return min(blocked, 1.0)


def run_internet_scale(
    num_domains: int = 60,
    greylisting_rate: float = 0.3,
    nolisting_rate: float = 0.1,
    messages: int = 400,
    greylist_delay: float = 300.0,
    seed: int = 61,
    horizon: float = 400000.0,
    engine: str = "object",
    session_cache: Optional[SessionOutcomeCache] = None,
    counters: Optional[BatchCounters] = None,
    chunk_domains: int = 100_000,
    store_backend: str = "memory",
) -> InternetScaleResult:
    """Run one spam wave through a mixed-deployment internet.

    ``store_backend`` selects the triplet-store backend of every
    greylisted domain's policy (:mod:`repro.greylist.backends`);
    backends are bit-for-bit equivalent, so results are identical for
    any choice — which the backend-equivalence suite asserts.

    ``engine="object"`` simulates every DNS lookup, connection and SMTP
    dialogue on the event scheduler; ``engine="batch"`` collapses the wave
    into (family x deployment) equivalence classes, drives one *real*
    session per class (memoized in ``session_cache``, a
    :class:`~repro.sim.batch.SessionOutcomeCache`) and replays only the
    per-message retry-delay draws — producing the identical result.
    ``engine="columnar"`` additionally *streams* the receiver internet's
    deployment column in chunks of ``chunk_domains`` (see
    :func:`repro.scan.columnar.stream_deployment_chunks`), retaining only
    the targeted entries — peak memory is one chunk plus the wave,
    independent of ``num_domains``, which is what lifts the sweep to 10M
    domains.  ``counters``, a :class:`~repro.sim.batch.BatchCounters`, is
    filled with the batched run's collapse accounting when given; the
    cache and counter knobs are ignored by the object engine.
    """
    if engine not in ("object", "batch", "columnar"):
        raise ValueError(f"unknown internet-scale engine {engine!r}")
    if not 0.0 <= greylisting_rate + nolisting_rate <= 1.0:
        raise ValueError("deployment rates must sum to at most 1")
    if engine in ("batch", "columnar"):
        run = (
            _run_internet_scale_batched
            if engine == "batch"
            else _run_internet_scale_columnar
        )
        return run(
            num_domains=num_domains,
            greylisting_rate=greylisting_rate,
            nolisting_rate=nolisting_rate,
            messages=messages,
            greylist_delay=greylist_delay,
            seed=seed,
            horizon=horizon,
            session_cache=session_cache,
            counters=counters,
            chunk_domains=chunk_domains,
            store_backend=store_backend,
        )
    rng = RandomStream(seed, "internet-scale")
    scheduler = EventScheduler(Clock())
    internet = VirtualInternet()
    zones = ZoneStore()
    resolver = StubResolver(zones, clock=scheduler.clock)
    server_pool = AddressPool(IPv4Network.parse("10.0.0.0/16"))
    bot_pool = AddressPool(IPv4Network.parse("198.51.100.0/24"))

    # --- receiver domains with a randomized deployment mix ----------------
    deploy_rng = rng.split("deployments")
    domains: List[str] = []
    for index in range(num_domains):
        domain = f"site{index:04d}.example"
        domains.append(domain)
        roll = deploy_rng.random()
        if roll < nolisting_rate:
            policy = None
            builder = setup_nolisting
        elif roll < nolisting_rate + greylisting_rate:
            policy = GreylistPolicy(
                clock=scheduler.clock,
                delay=greylist_delay,
                store_backend=store_backend,
            )
            builder = setup_single_mx
        else:
            policy = None
            builder = setup_single_mx
        server = SMTPServer(
            hostname=f"smtp.{domain}",
            clock=scheduler.clock,
            policy=policy,
            local_domains=[domain],
        )
        builder(internet, zones, server_pool, domain, server.session_factory)

    # --- the spam wave: family mix per Table I ----------------------------
    bots = {
        family.name: family.build_bot(
            internet=internet,
            resolver=resolver,
            scheduler=scheduler,
            source_address=bot_pool.allocate(),
            rng=rng.split(f"bot:{family.name}"),
        )
        for family in FAMILIES
    }
    weights = [family.botnet_spam_share for family in FAMILIES]
    mix_rng = rng.split("mix")
    target_rng = rng.split("targets")
    per_family_sent: Dict[str, int] = {f.name: 0 for f in FAMILIES}
    for index in range(messages):
        family = FAMILIES[mix_rng.weighted_index(weights)]
        domain = target_rng.choice(domains)
        per_family_sent[family.name] += 1
        # One private retry-randomness stream per message: tasks stay
        # independent of scheduler interleaving, which is what lets the
        # batch engine replay them without running the event loop.
        bots[family.name].assign(
            Message(
                sender=f"spam{index}@botnet.example",
                recipients=[f"user{index % 17}@{domain}"],
            ),
            rng=rng.split(f"msg:{index}"),
        )

    scheduler.run(until=horizon)

    per_family_delivered = {
        name: len(bot.delivered_tasks) for name, bot in bots.items()
    }
    return _assemble_result(
        num_domains,
        greylisting_rate,
        nolisting_rate,
        per_family_sent,
        per_family_delivered,
    )


def _assemble_result(
    num_domains: int,
    greylisting_rate: float,
    nolisting_rate: float,
    per_family_sent: Dict[str, int],
    per_family_delivered: Dict[str, int],
) -> InternetScaleResult:
    """Fold per-family tallies into the result (shared by both engines)."""
    # Normalize the analytic prediction over the *sent* mix.
    total_sent = sum(per_family_sent.values())
    predicted = sum(
        per_family_sent[family.name]
        * _family_blocked_probability(
            family, greylisting_rate, nolisting_rate
        )
        for family in FAMILIES
    ) / total_sent if total_sent else 0.0

    return InternetScaleResult(
        num_domains=num_domains,
        greylisting_rate=greylisting_rate,
        nolisting_rate=nolisting_rate,
        spam_sent=total_sent,
        spam_delivered=sum(per_family_delivered.values()),
        per_family_delivered=per_family_delivered,
        per_family_sent=per_family_sent,
        predicted_block_rate=predicted,
    )


#: Deployment kinds a receiver domain can be in (disjoint in this model).
_PLAIN, _NOLISTED, _GREYLISTED = "plain", "nolisted", "greylisted"

#: Columnar deployment code (see :mod:`repro.scan.columnar`) -> kind.
_KIND_OF_CODE = (_PLAIN, _NOLISTED, _GREYLISTED)


def _replay_wave(
    rng: RandomStream, messages: int, num_domains: int
) -> List[tuple]:
    """Replay the wave's family-mix and target draws verbatim.

    Returns ``(message index, family, target domain index)`` triples.  The
    mix and target streams are independent splits, so draining them here —
    before any deployment work — consumes exactly the draws the object
    path's per-message loop consumes.  ``choice()`` draws depend only on
    the sequence length, so picking from a ``range`` replays the object
    path's pick out of the name list exactly.
    """
    weights = [family.botnet_spam_share for family in FAMILIES]
    mix_rng = rng.split("mix")
    target_rng = rng.split("targets")
    domain_indices = range(num_domains)
    return [
        (
            index,
            FAMILIES[mix_rng.weighted_index(weights)],
            target_rng.choice(domain_indices),
        )
        for index in range(messages)
    ]


def _resolve_wave(
    wave: List[tuple],
    deployment_of,
    rng: RandomStream,
    greylist_delay: float,
    horizon: float,
    session_cache: Optional[SessionOutcomeCache],
    counters: Optional[BatchCounters],
    store_backend: str = "memory",
) -> tuple:
    """Resolve every message of a replayed wave through session playbooks.

    The shared core of the batch and columnar engines:

    * a nolisted target blocks primary-only senders at the TCP layer (no
      session exists to cache) and is an open door for everyone else;
    * a plain target delivers on the first real dialogue;
    * a greylisted target defers the first attempt, after which the
      family's *real* retry model — fed by the same ``msg:{index}``
      private stream the object path's task uses — decides arithmetically
      whether some retry lands at triplet age >= the threshold before the
      horizon or the attempt budget runs out.

    Soundness: retry draws are task-private, greylist triplets are unique
    per message (unique senders), and no other state couples messages, so
    outcomes depend only on (family, deployment kind, retry-draw stream) —
    which is exactly what is replayed.  ``deployment_of`` maps a target
    domain index to its deployment kind; the batch engine backs it with
    the full replayed list, the columnar engine with the streamed chunks'
    targeted entries only.
    """
    from ..sim.batch import EquivalenceClassIndex
    from .playbooks import build_playbook

    cache = session_cache if session_cache is not None else SessionOutcomeCache()
    misses_before = cache.misses
    classes: EquivalenceClassIndex = EquivalenceClassIndex()

    # Policy fingerprints for the cache keys (identical to the ones the
    # object path's servers would expose).
    open_fp = ConnectionPolicy().fingerprint()
    grey_fp = GreylistPolicy(clock=Clock(), delay=greylist_delay).fingerprint()

    per_family_sent: Dict[str, int] = {f.name: 0 for f in FAMILIES}
    per_family_delivered: Dict[str, int] = {f.name: 0 for f in FAMILIES}

    for index, family, target in wave:
        deployment = deployment_of(target)
        per_family_sent[family.name] += 1
        classes.add((family.name, deployment), index)

        if deployment == _NOLISTED:
            if family.mx_behavior is MXBehavior.PRIMARY_ONLY:
                # Dead primary, and this family never walks to the live
                # secondary: every attempt is a refused connection.
                continue
            deployment_fp = open_fp
        elif deployment == _PLAIN:
            deployment_fp = open_fp
        else:
            deployment_fp = grey_fp

        if deployment != _GREYLISTED:
            playbook = cache.get_or_build(
                (family.helo_name, deployment_fp, "open"),
                lambda f=family: build_playbook(f.helo_name),
            )  # no greylist policy in these sessions: no store involved
            if playbook.delivered:
                per_family_delivered[family.name] += 1
            continue

        first = cache.get_or_build(
            (family.helo_name, grey_fp, "new"),
            lambda f=family: build_playbook(
                f.helo_name,
                greylist_delay=greylist_delay,
                greylist_phase="new",
                store_backend=store_backend,
            ),
        )
        if first.delivered:
            per_family_delivered[family.name] += 1
            continue
        if not first.deferred:
            continue  # permanent rejection: the bot abandons immediately
        model = family.retry_factory()
        if isinstance(model, FireAndForget):
            continue  # one shot, already deferred
        task_rng = rng.split(f"msg:{index}")
        t = 0.0
        attempts = 1
        while True:
            delay = model.next_delay(attempts, task_rng)
            if delay is None:
                break  # attempt budget exhausted: abandoned
            t += delay
            if t > horizon:
                break  # the retry never fires within the run
            attempts += 1
            phase = "passed" if t >= greylist_delay else "early"
            retry = cache.get_or_build(
                (family.helo_name, grey_fp, phase),
                lambda f=family, p=phase: build_playbook(
                    f.helo_name,
                    greylist_delay=greylist_delay,
                    greylist_phase=p,
                    store_backend=store_backend,
                ),
            )
            if retry.delivered:
                per_family_delivered[family.name] += 1
                break
            if not retry.deferred:
                break

    if counters is not None:
        counters.members += classes.num_members
        counters.classes += classes.num_classes
        counters.representative_runs += cache.misses - misses_before

    return per_family_sent, per_family_delivered


def _run_internet_scale_batched(
    num_domains: int,
    greylisting_rate: float,
    nolisting_rate: float,
    messages: int,
    greylist_delay: float,
    seed: int,
    horizon: float,
    session_cache: Optional[SessionOutcomeCache] = None,
    counters: Optional[BatchCounters] = None,
    chunk_domains: int = 100_000,
    store_backend: str = "memory",
) -> InternetScaleResult:
    """The equivalence-class engine behind ``engine="batch"``.

    Replays the object path's deployment, family-mix and target draws
    verbatim, holding the full deployment list in memory, then resolves
    each message through :func:`_resolve_wave`.  ``chunk_domains`` is
    accepted for signature parity with the columnar engine and ignored.
    """
    rng = RandomStream(seed, "internet-scale")

    # --- replay of the deployment draws (one uniform roll per domain) ----
    deploy_rng = rng.split("deployments")
    deployments: List[str] = []
    for _ in range(num_domains):
        roll = deploy_rng.random()
        if roll < nolisting_rate:
            deployments.append(_NOLISTED)
        elif roll < nolisting_rate + greylisting_rate:
            deployments.append(_GREYLISTED)
        else:
            deployments.append(_PLAIN)

    wave = _replay_wave(rng, messages, num_domains)
    per_family_sent, per_family_delivered = _resolve_wave(
        wave,
        deployments.__getitem__,
        rng,
        greylist_delay,
        horizon,
        session_cache,
        counters,
        store_backend=store_backend,
    )
    return _assemble_result(
        num_domains,
        greylisting_rate,
        nolisting_rate,
        per_family_sent,
        per_family_delivered,
    )


def _run_internet_scale_columnar(
    num_domains: int,
    greylisting_rate: float,
    nolisting_rate: float,
    messages: int,
    greylist_delay: float,
    seed: int,
    horizon: float,
    session_cache: Optional[SessionOutcomeCache] = None,
    counters: Optional[BatchCounters] = None,
    chunk_domains: int = 100_000,
    store_backend: str = "memory",
) -> InternetScaleResult:
    """The streaming engine behind ``engine="columnar"``.

    Identical draws, identical results — different memory shape.  The wave
    is replayed first (its streams are independent of the deployment
    stream), which pins down the handful of *targeted* domain indices;
    the deployment column is then streamed through in ``chunk_domains``
    chunks (:func:`repro.scan.columnar.stream_deployment_chunks`, bulk
    Python draws + vectorized binning) and only the targeted cells are
    retained.  Peak memory is O(chunk + messages), independent of
    ``num_domains`` — the property the memory-budget benchmark pins.
    """
    from ..scan.columnar import stream_deployment_chunks

    rng = RandomStream(seed, "internet-scale")
    wave = _replay_wave(rng, messages, num_domains)
    targeted = sorted({target for _, _, target in wave})

    deployment: Dict[int, str] = {}
    cursor = 0
    for start, codes in stream_deployment_chunks(
        rng.split("deployments"),
        num_domains,
        nolisting_rate,
        greylisting_rate,
        chunk_domains=chunk_domains,
    ):
        end = start + len(codes)
        while cursor < len(targeted) and targeted[cursor] < end:
            index = targeted[cursor]
            deployment[index] = _KIND_OF_CODE[codes[index - start]]
            cursor += 1

    per_family_sent, per_family_delivered = _resolve_wave(
        wave,
        deployment.__getitem__,
        rng,
        greylist_delay,
        horizon,
        session_cache,
        counters,
        store_backend=store_backend,
    )
    return _assemble_result(
        num_domains,
        greylisting_rate,
        nolisting_rate,
        per_family_sent,
        per_family_delivered,
    )


def sweep_deployment_rates(
    rates: List[tuple] = None,
    messages: int = 300,
    seed: int = 61,
    workers: int = 1,
    cache=None,
    num_domains: int = 60,
    engine: str = "object",
    store_backend: str = "memory",
) -> List[InternetScaleResult]:
    """Block rate as deployment grows — the "what if adoption rose" curve.

    Each (greylisting, nolisting) grid point is an independent simulation,
    so the sweep fans them over ``workers`` processes; ``cache`` memoizes
    completed points across invocations.  ``engine="batch"`` runs each
    point on the equivalence-class engine — identical results at a
    fraction of the cost; ``engine="columnar"`` additionally streams the
    deployment column in fixed-size chunks, which is what pushes
    ``num_domains`` to internet scale (10M+) under a fixed memory budget.
    """
    from ..runner.pool import run_tasks
    from ..runner.shards import internet_scale_task

    if engine not in ("object", "batch", "columnar"):
        raise ValueError(f"unknown internet-scale engine {engine!r}")
    if rates is None:
        rates = [(0.0, 0.0), (0.2, 0.05), (0.5, 0.1), (0.8, 0.2)]
    payloads = [
        {
            "num_domains": num_domains,
            "greylisting_rate": grey,
            "nolisting_rate": nolist,
            "messages": messages,
            "seed": seed,
            # Only present when batching, so object-path payloads keep
            # their pre-batch-engine cache identity.
            **({"engine": engine} if engine != "object" else {}),
            # Same idiom: the key exists only off the default backend, so
            # memory-backend payloads keep their pre-backend cache identity.
            **(
                {"store_backend": store_backend}
                if store_backend != "memory"
                else {}
            ),
        }
        for (grey, nolist) in rates
    ]
    rows = run_tasks(
        internet_scale_task,
        payloads,
        workers=workers,
        cache=cache,
        experiment="internet-scale",
    )
    return [InternetScaleResult(**row) for row in rows]
