"""Triplet-database persistence.

Postgrey keeps its triplet state in an on-disk BerkeleyDB; restarts must
not forget who already passed (or every sender would eat the delay again).
This module provides a text snapshot format for :class:`TripletStore` —
dump, load, and a compacting save that drops expired entries, mirroring
Postgrey's periodic database cleanup.

The v1 entry-line format defined here is also the journal op format of
:class:`~repro.greylist.backends.JournalBackend` (one snapshot line per
upsert), so :func:`format_entry_line` / :func:`parse_entry_line` are the
single source of truth for serializing a
:class:`~repro.greylist.store.TripletEntry`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, TextIO

from ..net.address import IPv4Address
from ..sim.clock import Clock
from .store import TripletEntry, TripletStore
from .triplet import Triplet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backends import TripletBackend

#: Snapshot format version, checked on load.
FORMAT_HEADER = "# repro-greylist-db v1"


class PersistenceError(ValueError):
    """Raised for malformed snapshots."""


def format_entry_line(entry: TripletEntry) -> str:
    """Serialize one entry as a v1 snapshot line::

        <client-ip> <sender> <recipient> <first> <last> <attempts> <passed-at|->

    ``repr()`` gives the shortest exact decimal for each float, so a
    dump/load round trip preserves timestamps bit-for-bit.
    """
    passed = repr(entry.passed_at) if entry.passed else "-"
    return (
        f"{entry.triplet.client} {entry.triplet.sender} "
        f"{entry.triplet.recipient} {entry.first_seen!r} "
        f"{entry.last_seen!r} {entry.attempts} {passed}"
    )


def parse_entry_line(line: str, line_number: int) -> TripletEntry:
    """Parse one v1 snapshot line back into an entry.

    Raises :class:`PersistenceError` naming ``line_number`` for malformed
    or internally inconsistent lines.
    """
    parts = line.split()
    if len(parts) != 7:
        raise PersistenceError(
            f"malformed snapshot line {line_number}: {line!r}"
        )
    client, sender, recipient, first, last, attempts, passed = parts
    try:
        triplet = Triplet(IPv4Address.parse(client), sender, recipient)
        entry = TripletEntry(
            triplet=triplet,
            first_seen=float(first),
            last_seen=float(last),
            attempts=int(attempts),
            passed=(passed != "-"),
            passed_at=None if passed == "-" else float(passed),
        )
    except (ValueError, TypeError) as error:
        raise PersistenceError(
            f"malformed snapshot line {line_number}: {line!r}"
        ) from error
    if entry.attempts < 1 or entry.last_seen < entry.first_seen:
        raise PersistenceError(
            f"inconsistent entry on snapshot line {line_number}"
        )
    return entry


def dump_store(store: TripletStore) -> str:
    """Serialize the live entries of a store (one line per triplet).

    The sort key is *total* — ``(first_seen, client, sender, recipient)``
    — so the output is byte-identical regardless of the backend's scan
    order: the dump of a store is a pure function of its contents, which
    is what lets the backend-equivalence suite compare snapshots directly.
    """
    lines: List[str] = [FORMAT_HEADER]
    for entry in sorted(
        store.entries(),
        key=lambda e: (
            e.first_seen,
            str(e.triplet.client),
            e.triplet.sender,
            e.triplet.recipient,
        ),
    ):
        lines.append(format_entry_line(entry))
    return "\n".join(lines) + "\n"


def load_store(
    text: str,
    clock: Clock,
    retry_window: Optional[float] = None,
    whitelist_lifetime: Optional[float] = None,
    backend: Optional["TripletBackend"] = None,
) -> TripletStore:
    """Rebuild a store from a snapshot.

    Entries that are already expired relative to ``clock.now`` are
    expired on load with the same semantics a live lookup would apply:
    they are dropped *and counted* in ``expired_confirmed`` /
    ``expired_unconfirmed`` — so a loaded store's counters cannot drift
    from one that replayed the same history live.  ``None`` for either
    window means the :class:`TripletStore` default.  ``backend`` selects
    the storage backend of the rebuilt store (default: in-memory).
    """
    kwargs = {}
    if retry_window is not None:
        kwargs["retry_window"] = retry_window
    if whitelist_lifetime is not None:
        kwargs["whitelist_lifetime"] = whitelist_lifetime
    store = TripletStore(clock, backend=backend, **kwargs)

    lines = text.splitlines()
    if not lines or lines[0].strip() != FORMAT_HEADER:
        raise PersistenceError("missing or unknown snapshot header")
    for line_number, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        entry = parse_entry_line(line, line_number)
        if store._is_expired(entry):
            if entry.passed:
                store.expired_confirmed += 1
            else:
                store.expired_unconfirmed += 1
            continue
        store.restore(entry)
    return store


def save_compacted(store: TripletStore, stream: TextIO) -> int:
    """Sweep expired entries, then write the snapshot to ``stream``.

    Returns the number of entries written.  This is the Postgrey
    ``--max-age`` cleanup fused with the database save.
    """
    store.sweep()
    text = dump_store(store)
    stream.write(text)
    return store.size


def snapshot_size_bytes(store: TripletStore) -> int:
    """Size of the serialized database — the §VI disk-cost metric."""
    return len(dump_store(store).encode("utf-8"))
