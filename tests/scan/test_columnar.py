"""Unit tests for the columnar pipeline (:mod:`repro.scan.columnar`).

The columns are a lossless re-encoding of the generator's ground truth:
every cell must agree with what :class:`SyntheticInternet` actually built,
on both the NumPy and the pure-Python ``array`` backends, and the streamed
deployment column must replay the object path's draws exactly.
"""

import pytest

from repro.scan.columnar import (
    DEPLOY_GREYLISTED,
    DEPLOY_NOLISTED,
    DEPLOY_PLAIN,
    NO_OUTAGE,
    NO_POOL,
    TOPO_POOL_BALANCED,
    TOPO_POOL_FAILOVER,
    ColumnarChunk,
    build_columnar_chunk,
    chunk_records,
    columnar_adoption_shard,
    numpy_or_none,
    pool_apex_of,
    stream_deployment_chunks,
)
from repro.scan.population import (
    CATEGORY_ORDER,
    PopulationConfig,
    PopulationPlan,
    SyntheticInternet,
    population_params,
    provider_pool_apex,
)
from repro.scan.profiles import PROFILE_CODE, PROFILES, profile_config
from repro.sim.rng import RandomStream

#: A config that exercises every topology branch: self-hosted multi-MX,
#: both pool layouts, transient and persistent outages, both
#: misconfiguration flavours.
POOLED = dict(
    num_domains=600,
    transient_outage_rate=0.05,
    persistent_outage_rate=0.1,
    provider_pool_fraction=0.4,
    provider_equal_preference=0.5,
)


def build_both(config: PopulationConfig, seed: int, chunk_index: int):
    plan = PopulationPlan(config, seed)
    chunk = build_columnar_chunk(plan, config, seed, chunk_index)
    internet = SyntheticInternet.shard(config, seed, [chunk_index])
    return plan, chunk, internet


class TestColumnsMatchGroundTruth:
    @pytest.mark.parametrize("chunk_index", [0, 1])
    def test_pooled_config(self, chunk_index):
        config = PopulationConfig(**POOLED)
        plan, chunk, internet = build_both(config, 42, chunk_index)
        rows = plan.chunk_rows(chunk_index)
        assert chunk.n == len(rows) == len(internet.domains)
        for i, (truth, (_, name, category, rank)) in enumerate(
            zip(internet.domains, rows)
        ):
            assert truth.name == name
            assert CATEGORY_ORDER[int(chunk.category[i])] is category
            assert CATEGORY_ORDER[int(chunk.category[i])] is truth.category
            assert int(chunk.rank[i]) == rank
            # The MX record triples are derivable, not stored: hostname,
            # preference and address must all round-trip.
            expected = [
                (host, pref, None if addr is None else addr.value)
                for host, pref, addr in truth.mx_hosts
            ]
            assert chunk_records(chunk, i, name) == expected
            assert int(chunk.mx_count[i]) == len(truth.mx_hosts)
            # Outage schedule and provider-pool cells.
            outage = int(chunk.outage_scan[i])
            assert (None if outage == NO_OUTAGE else outage) == truth.outage_scan
            assert bool(chunk.persistent[i]) == truth.persistent_outage
            pool = int(chunk.provider_pool[i])
            assert (None if pool == NO_POOL else pool) == truth.provider_pool
            if truth.provider_pool is not None:
                expected_topo = (
                    TOPO_POOL_BALANCED
                    if truth.pool_balanced
                    else TOPO_POOL_FAILOVER
                )
                assert int(chunk.topology[i]) == expected_topo
                assert pool_apex_of(chunk, i) == provider_pool_apex(
                    truth.provider_pool
                )
            else:
                assert pool_apex_of(chunk, i) is None

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_every_profile(self, name):
        config = profile_config(name, num_domains=400)
        _, chunk, internet = build_both(config, 7, 0)
        assert all(p == PROFILE_CODE[name] for p in chunk.profile)
        for i, truth in enumerate(internet.domains):
            expected = [
                (host, pref, None if addr is None else addr.value)
                for host, pref, addr in truth.mx_hosts
            ]
            assert chunk_records(chunk, i, truth.name) == expected


class TestFallbackBackend:
    def test_fallback_columns_identical(self, monkeypatch):
        config = PopulationConfig(**POOLED)
        plan = PopulationPlan(config, 42)
        with_numpy = build_columnar_chunk(plan, config, 42, 0)
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert numpy_or_none() is None
        fallback = build_columnar_chunk(plan, config, 42, 0)
        assert fallback.n == with_numpy.n
        for column in ColumnarChunk.__slots__:
            a, b = getattr(with_numpy, column), getattr(fallback, column)
            if not hasattr(a, "__len__"):
                assert a == b  # scalar metadata
                continue
            assert [int(x) for x in a] == [int(x) for x in b]

    def test_fallback_shard_identical(self, monkeypatch):
        config = profile_config("provider-consolidated", num_domains=500)
        payload = {
            "population": population_params(config),
            "seed": 11,
            "glue_elision_rate": 0.0,
            "chunk": 0,
        }
        with_numpy = columnar_adoption_shard(dict(payload))
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert columnar_adoption_shard(dict(payload)) == with_numpy


class TestDeploymentStreaming:
    def _object_replay(self, seed, num_domains, nolisting, greylisting):
        """The object path's draw loop, verbatim (internet_scale.py)."""
        rng = RandomStream(seed, "internet-scale").split("deployments")
        codes = []
        for _ in range(num_domains):
            roll = rng.random()
            if roll < nolisting:
                codes.append(DEPLOY_NOLISTED)
            elif roll < nolisting + greylisting:
                codes.append(DEPLOY_GREYLISTED)
            else:
                codes.append(DEPLOY_PLAIN)
        return codes

    @pytest.mark.parametrize("chunk_domains", [1, 7, 100, 10_000])
    def test_matches_object_replay(self, chunk_domains):
        expected = self._object_replay(61, 500, 0.1, 0.5)
        rng = RandomStream(61, "internet-scale").split("deployments")
        streamed = []
        starts = []
        for start, codes in stream_deployment_chunks(
            rng, 500, 0.1, 0.5, chunk_domains=chunk_domains
        ):
            starts.append(start)
            streamed.extend(int(c) for c in codes)
        assert streamed == expected
        assert starts == list(range(0, 500, chunk_domains))

    def test_degenerate_rates(self):
        rng = RandomStream(3, "internet-scale").split("deployments")
        (_, codes), = stream_deployment_chunks(rng, 50, 1.0, 0.0)
        assert all(int(c) == DEPLOY_NOLISTED for c in codes)

    def test_rejects_bad_chunk_size(self):
        rng = RandomStream(3, "x")
        with pytest.raises(ValueError):
            list(stream_deployment_chunks(rng, 10, 0.1, 0.1, chunk_domains=0))


class TestProfiles:
    def test_registry_and_codes_aligned(self):
        assert set(PROFILE_CODE) == set(PROFILES)
        assert len(set(PROFILE_CODE.values())) == len(PROFILE_CODE)

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_configs_valid_and_roundtrip(self, name):
        config = profile_config(name, num_domains=300)
        assert config.num_domains == 300
        assert config.profile == name
        # Canonical params survive the worker-payload round trip.
        from repro.scan.population import population_from_params

        assert population_from_params(population_params(config)) == config

    def test_overrides_win(self):
        config = profile_config(
            "dns-abuse", num_domains=100, transient_outage_rate=0.2
        )
        assert config.transient_outage_rate == 0.2

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            profile_config("figure3", num_domains=10)
