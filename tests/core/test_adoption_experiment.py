"""Tests for the Figure 2 adoption experiment."""

import pytest

from repro.core.adoption import (
    run_adoption_experiment,
    single_scan_false_positives,
)
from repro.scan.detect import DomainClass


@pytest.fixture(scope="module")
def result():
    return run_adoption_experiment(num_domains=5000, seed=42)


class TestAdoptionExperiment:
    def test_percentages_near_paper(self, result):
        percentages = result.measured_percentages()
        assert percentages[DomainClass.ONE_MX] == pytest.approx(47.73, abs=0.6)
        assert percentages[DomainClass.MULTI_MX_NO_NOLISTING] == pytest.approx(
            45.97, abs=0.6
        )
        assert percentages[DomainClass.DNS_MISCONFIGURED] == pytest.approx(
            5.78, abs=0.3
        )
        assert percentages[DomainClass.NOLISTING] == pytest.approx(0.52, abs=0.15)

    def test_pipeline_perfect_on_clean_population(self, result):
        assert result.confusion["wrong"] == 0
        assert result.confusion["correct"] == 5000

    def test_parallel_scanner_repaired_records(self, result):
        # glue elision at 10% over two scans must leave work for the
        # follow-up scanner.
        assert result.repaired_mx_records > 0

    def test_popularity_crosscheck_matches_paper(self, result):
        assert result.crosscheck.top15 == 1
        assert result.crosscheck.top500 == 3
        assert result.crosscheck.top1000 == 5

    def test_server_coverage_reported(self, result):
        assert result.summary.servers_covered > 5000  # multi-MX domains
        assert result.summary.addresses_covered > 0

    def test_change_between_scans_small(self, result):
        # The paper observed only a 0.01% change between the two scans.
        assert result.summary.flapped / result.summary.total_domains < 0.01

    def test_deterministic(self):
        a = run_adoption_experiment(num_domains=1000, seed=9)
        b = run_adoption_experiment(num_domains=1000, seed=9)
        assert a.summary.counts == b.summary.counts


class TestTwoScanAblation:
    def test_single_scan_has_false_positives(self):
        counts = single_scan_false_positives(
            num_domains=5000, seed=42, transient_outage_rate=0.02
        )
        # Transiently-down primaries masquerade as nolisting in one scan.
        assert counts["false_positives"] > 0
        assert counts["true_positives"] > 0

    def test_two_scan_protocol_removes_them(self):
        result = run_adoption_experiment(
            num_domains=5000, seed=42, transient_outage_rate=0.02
        )
        # Despite 2% transient outages the pipeline stays perfect.
        assert result.confusion["wrong"] == 0

    def test_no_outages_no_false_positives(self):
        counts = single_scan_false_positives(
            num_domains=2000, seed=42, transient_outage_rate=0.0
        )
        assert counts["false_positives"] == 0
