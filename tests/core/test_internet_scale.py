"""Tests for the internet-scale spam-flow synthesis."""

import pytest

from repro.core.internet_scale import (
    run_internet_scale,
    sweep_deployment_rates,
)


class TestInternetScale:
    @pytest.fixture(scope="class")
    def result(self):
        return run_internet_scale(messages=300)

    def test_accounting_consistent(self, result):
        assert result.spam_sent == 300
        assert sum(result.per_family_sent.values()) == 300
        assert result.spam_delivered == sum(
            result.per_family_delivered.values()
        )
        assert 0.0 <= result.block_rate <= 1.0

    def test_family_mix_follows_table1(self, result):
        # Cutwail carries ~47% of botnet spam; sampling noise aside the
        # generated wave reflects that.
        cutwail_share = result.per_family_sent["Cutwail"] / result.spam_sent
        assert 0.35 <= cutwail_share <= 0.60

    def test_measured_tracks_analytic_prediction(self, result):
        assert result.block_rate == pytest.approx(
            result.predicted_block_rate, abs=0.08
        )

    def test_no_defenses_blocks_nothing(self):
        result = run_internet_scale(
            greylisting_rate=0.0, nolisting_rate=0.0, messages=120
        )
        assert result.block_rate == 0.0

    def test_block_rate_grows_with_deployment(self):
        sweep = sweep_deployment_rates(messages=200)
        rates = [r.block_rate for r in sweep]
        assert rates[0] == 0.0
        assert all(b >= a - 0.02 for a, b in zip(rates, rates[1:]))
        assert rates[-1] > 0.4

    def test_per_family_selectivity(self, result):
        # Greylisted domains block the fire-and-forget families only;
        # nolisted domains block Kelihos only — so with both deployed,
        # every family loses *some* mail but none loses all.
        for family in ("Cutwail", "Kelihos"):
            rate = result.family_delivery_rate(family)
            assert 0.0 < rate < 1.0, family

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            run_internet_scale(greylisting_rate=0.9, nolisting_rate=0.3)
