"""Unit tests for the deterministic fault-injection layer."""

import json

import pytest

from repro.dns.resolver import DNSTimeout, ServFail, StubResolver
from repro.dns.zone import ZoneStore
from repro.faults import (
    FAULT_KINDS,
    FaultConfig,
    FaultPlan,
    ResettingSession,
    fault_from_params,
    fault_params,
)
from repro.net.address import IPv4Address
from repro.net.host import (
    SMTP_PORT,
    ConnectionRefused,
    ConnectionReset,
    HostUnreachable,
    VirtualHost,
)
from repro.net.network import VirtualInternet
from repro.sim.clock import Clock
from repro.smtp.client import AttemptOutcome, SMTPClient
from repro.smtp.message import Message
from repro.smtp.server import SMTPServer


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(host_outage_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(port_flap_rate=1.5)

    def test_dns_bands_must_fit_unit_interval(self):
        with pytest.raises(ValueError):
            FaultConfig(dns_servfail_rate=0.7, dns_timeout_rate=0.5)

    def test_epoch_length_positive(self):
        with pytest.raises(ValueError):
            FaultConfig(epoch_length=0.0)

    def test_uniform_sets_transient_rates_only(self):
        config = FaultConfig.uniform(0.1, seed=5)
        assert config.seed == 5
        assert config.host_outage_rate == 0.1
        assert config.port_flap_rate == 0.1
        assert config.dns_servfail_rate == 0.1
        assert config.dns_timeout_rate == 0.05
        assert config.connection_reset_rate == 0.1
        assert config.lame_delegation_rate == 0.0

    def test_any_enabled(self):
        assert not FaultConfig().any_enabled
        assert FaultConfig(dns_timeout_rate=0.01).any_enabled

    def test_epoch_for_quantizes(self):
        config = FaultConfig(epoch_length=3600.0)
        assert config.epoch_for(0.0) == 0
        assert config.epoch_for(3599.9) == 0
        assert config.epoch_for(3600.0) == 1

    def test_params_roundtrip_and_json(self):
        config = FaultConfig.uniform(0.02, seed=9)
        params = fault_params(config)
        assert fault_from_params(json.loads(json.dumps(params))) == config


class TestFaultPlan:
    def test_draws_deterministic_across_plans(self):
        config = FaultConfig(seed=3, host_outage_rate=0.5)
        a = FaultPlan(config)
        b = FaultPlan(config)
        hosts = [f"mx{i}.example" for i in range(50)]
        assert [a.host_down(h, 0) for h in hosts] == [
            b.host_down(h, 0) for h in hosts
        ]

    def test_draws_independent_of_query_order(self):
        config = FaultConfig(seed=3, dns_servfail_rate=0.3, dns_timeout_rate=0.3)
        forward = FaultPlan(config)
        backward = FaultPlan(config)
        names = [f"d{i}.example" for i in range(40)]
        want = {n: forward.dns_fault(n, 1) for n in names}
        got = {n: backward.dns_fault(n, 1) for n in reversed(names)}
        assert got == want

    def test_epochs_draw_independently(self):
        plan = FaultPlan(FaultConfig(seed=0, host_outage_rate=0.5))
        hosts = [f"h{i}" for i in range(100)]
        epoch0 = [plan.host_down(h, 0) for h in hosts]
        epoch1 = [plan.host_down(h, 1) for h in hosts]
        assert epoch0 != epoch1  # independent windows, not a sticky outage

    def test_zero_rates_never_fire(self):
        plan = FaultPlan(FaultConfig(seed=1))
        assert not plan.smtp_down("mx.example", 0)
        assert plan.dns_fault("d.example", 0) is None
        assert not plan.zone_lame("d.example")
        assert plan.session_reset_after("c1") is None
        assert all(count == 0 for count in plan.events.values())

    def test_certain_rates_always_fire(self):
        plan = FaultPlan(FaultConfig(seed=1, host_outage_rate=1.0))
        assert all(plan.host_down(f"h{i}", 0) for i in range(10))
        assert plan.events["host_down"] == 10

    def test_dns_fault_kinds_mutually_exclusive(self):
        plan = FaultPlan(
            FaultConfig(seed=2, dns_servfail_rate=0.5, dns_timeout_rate=0.5)
        )
        outcomes = {plan.dns_fault(f"d{i}.example", 0) for i in range(60)}
        assert outcomes == {"servfail", "timeout"}

    def test_lame_delegation_is_persistent(self):
        plan = FaultPlan(FaultConfig(seed=4, lame_delegation_rate=0.5))
        zones = [f"z{i}.example" for i in range(30)]
        first = [plan.zone_lame(z) for z in zones]
        again = [plan.zone_lame(z) for z in zones]
        assert first == again
        assert any(first) and not all(first)

    def test_reset_budget_range(self):
        plan = FaultPlan(FaultConfig(seed=5, connection_reset_rate=1.0))
        budgets = {plan.session_reset_after(f"c{i}") for i in range(40)}
        assert budgets <= {1, 2, 3, 4}
        assert len(budgets) > 1

    def test_event_counter_keys(self):
        assert set(FaultPlan(FaultConfig()).events) == set(FAULT_KINDS)


class FakeSession:
    def __init__(self):
        self.calls = []
        self.aborted = False
        self.banner = "220 ready"

    def helo(self, name):
        self.calls.append(("helo", name))
        return "250 ok"

    def abort(self):
        self.aborted = True


class TestResettingSession:
    def test_budget_exhaustion_raises_and_aborts(self):
        inner = FakeSession()
        session = ResettingSession(inner, commands_before_reset=2)
        assert session.helo("a") == "250 ok"
        assert session.helo("b") == "250 ok"
        with pytest.raises(ConnectionReset):
            session.helo("c")
        assert inner.aborted
        assert inner.calls == [("helo", "a"), ("helo", "b")]

    def test_attribute_reads_are_free(self):
        session = ResettingSession(FakeSession(), commands_before_reset=1)
        for _ in range(10):
            assert session.banner == "220 ready"
        assert session.helo("a") == "250 ok"

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ResettingSession(FakeSession(), commands_before_reset=0)

    def test_wrapped_exposes_inner(self):
        inner = FakeSession()
        assert ResettingSession(inner, 1).wrapped is inner


def _one_host_internet():
    internet = VirtualInternet()
    address = IPv4Address.parse("10.0.0.2")
    host = VirtualHost("mx1.example.com", [address])
    host.listen(SMTP_PORT, lambda client: FakeSession())
    internet.register(host)
    return internet, address


class TestVirtualInternetFaults:
    SRC = IPv4Address.parse("10.0.0.9")

    def test_host_downtime_window_unreachable(self):
        internet, address = _one_host_internet()
        internet.install_faults(FaultPlan(FaultConfig(host_outage_rate=1.0)))
        with pytest.raises(HostUnreachable):
            internet.connect(self.SRC, address, SMTP_PORT)
        assert not internet.syn_probe(address, SMTP_PORT)

    def test_port_flap_refuses_smtp_only(self):
        internet, address = _one_host_internet()
        other_port = 8025
        internet.host_at(address).listen(
            other_port, lambda client: FakeSession()
        )
        internet.install_faults(FaultPlan(FaultConfig(port_flap_rate=1.0)))
        with pytest.raises(ConnectionRefused):
            internet.connect(self.SRC, address, SMTP_PORT)
        assert internet.connections_refused == 1
        assert not internet.syn_probe(address, SMTP_PORT)
        # Only TCP/25 flaps; other services on the host stay reachable.
        internet.connect(self.SRC, address, other_port)
        assert internet.syn_probe(address, other_port)

    def test_detaching_faults_restores_health(self):
        internet, address = _one_host_internet()
        internet.install_faults(FaultPlan(FaultConfig(host_outage_rate=1.0)))
        internet.install_faults(None)
        internet.connect(self.SRC, address, SMTP_PORT)
        assert internet.syn_probe(address, SMTP_PORT)

    def test_reset_budget_wraps_session(self):
        internet, address = _one_host_internet()
        internet.install_faults(
            FaultPlan(FaultConfig(connection_reset_rate=1.0))
        )
        connection = internet.connect(self.SRC, address, SMTP_PORT)
        assert isinstance(connection.session, ResettingSession)
        assert internet.connections_reset_scheduled == 1

    def test_callable_epoch_consulted_per_connection(self):
        internet, address = _one_host_internet()
        clock = Clock()
        config = FaultConfig(seed=11, host_outage_rate=0.5)
        plan = FaultPlan(config)
        internet.install_faults(
            plan, epoch=lambda: config.epoch_for(clock.now)
        )
        probe = FaultPlan(config)
        down_epochs = [
            e for e in range(20) if probe.host_down("mx1.example.com", e)
        ]
        up_epochs = [
            e
            for e in range(20)
            if not probe.host_down("mx1.example.com", e)
        ]
        assert down_epochs and up_epochs
        clock.advance_to(down_epochs[0] * config.epoch_length)
        assert not internet.syn_probe(address, SMTP_PORT)
        clock.advance_to(up_epochs[-1] * config.epoch_length)
        assert internet.syn_probe(address, SMTP_PORT)


def _zone_store():
    store = ZoneStore()
    zone = store.get_or_create("example.com")
    zone.add_mx(10, "mx1.example.com")
    zone.add_a("mx1.example.com", IPv4Address.parse("10.0.0.2"))
    return store


class TestResolverFaults:
    def test_servfail_injection(self):
        resolver = StubResolver(
            _zone_store(),
            faults=FaultPlan(FaultConfig(dns_servfail_rate=1.0)),
        )
        with pytest.raises(ServFail):
            resolver.resolve_mx("example.com")
        assert ("MX", "example.com", "SERVFAIL") in resolver.query_log

    def test_timeout_injection(self):
        resolver = StubResolver(
            _zone_store(),
            faults=FaultPlan(FaultConfig(dns_timeout_rate=1.0)),
        )
        with pytest.raises(DNSTimeout):
            resolver.resolve_a("mx1.example.com")
        assert ("A", "mx1.example.com", "TIMEOUT") in resolver.query_log

    def test_timeout_is_a_dns_error_subclass(self):
        from repro.dns.resolver import DNSError

        assert issubclass(DNSTimeout, DNSError)

    def test_lame_delegation_servfails_the_zone(self):
        resolver = StubResolver(
            _zone_store(),
            faults=FaultPlan(FaultConfig(lame_delegation_rate=1.0)),
        )
        with pytest.raises(ServFail):
            resolver.resolve_mx("example.com")
        assert ("MX", "example.com", "SERVFAIL (lame)") in resolver.query_log

    def test_cached_answers_never_touch_the_flaky_server(self):
        clock = Clock()
        config = FaultConfig(seed=6, dns_servfail_rate=0.5)
        resolver = StubResolver(
            _zone_store(),
            clock=clock,
            faults=FaultPlan(config),
            fault_epoch=lambda: config.epoch_for(clock.now),
        )
        probe = FaultPlan(config)
        healthy = next(
            e for e in range(20) if probe.dns_fault("example.com", e) is None
        )
        faulty = next(
            e
            for e in range(20)
            if probe.dns_fault("example.com", e) is not None
        )
        clock.advance_to(healthy * config.epoch_length)
        resolver.resolve_mx("example.com")
        clock.advance_to(healthy * config.epoch_length + 1.0)
        # Within TTL: the cached answer is served even in a faulty epoch's
        # future — but a fresh query in the faulty epoch fails.
        resolver.resolve_mx("example.com")
        fresh = StubResolver(
            _zone_store(),
            clock=clock,
            faults=FaultPlan(config),
            fault_epoch=faulty,
        )
        with pytest.raises((ServFail, DNSTimeout)):
            fresh.resolve_mx("example.com")

    def test_no_faults_resolves_normally(self):
        resolver = StubResolver(_zone_store(), faults=None)
        answer = resolver.resolve_mx("example.com")
        assert [r.exchange for r in answer.records] == ["mx1.example.com"]


class TestClientUnderResets:
    def _delivery_world(self, reset_rate):
        clock = Clock()
        internet = VirtualInternet()
        address = IPv4Address.parse("10.0.0.2")
        server = SMTPServer(
            "mx1.example.com", clock, local_domains=["example.com"]
        )
        host = VirtualHost("mx1.example.com", [address])
        host.listen(SMTP_PORT, server.session_factory)
        internet.register(host)
        internet.install_faults(
            FaultPlan(FaultConfig(connection_reset_rate=reset_rate))
        )
        store = _zone_store()
        client = SMTPClient(
            internet, StubResolver(store), IPv4Address.parse("10.0.0.9")
        )
        return client, server

    def test_reset_outcome_is_retryable(self):
        client, server = self._delivery_world(reset_rate=1.0)
        message = Message(sender="a@b.net", recipients=["u@example.com"])
        result = client.send(message, "u@example.com")
        assert result.outcome is AttemptOutcome.CONNECTION_RESET
        assert result.should_retry
        assert any("ConnectionReset" in line for line in result.attempts_log)
        assert server.stats.sessions_aborted == 1

    def test_no_resets_delivers(self):
        client, server = self._delivery_world(reset_rate=0.0)
        message = Message(sender="a@b.net", recipients=["u@example.com"])
        result = client.send(message, "u@example.com")
        assert result.outcome is AttemptOutcome.DELIVERED
        assert server.stats.sessions_aborted == 0
