"""Unit tests for anonymized greylist log records and their text format."""

import pytest

from repro.maillog.records import (
    GreylistedMessageLog,
    anonymize,
    delivery_delays,
    dump_logs,
    parse_logs,
)


class TestAnonymize:
    def test_stable(self):
        a = anonymize("s@x.net", "r@y.net", "1.2.3.4")
        b = anonymize("s@x.net", "r@y.net", "1.2.3.4")
        assert a == b
        assert len(a) == 16

    def test_distinguishes_fields(self):
        base = anonymize("s@x.net", "r@y.net", "1.2.3.4")
        assert anonymize("s2@x.net", "r@y.net", "1.2.3.4") != base
        assert anonymize("s@x.net", "r2@y.net", "1.2.3.4") != base
        assert anonymize("s@x.net", "r@y.net", "1.2.3.5") != base

    def test_salt(self):
        assert anonymize("s@x.net", "r@y.net", "1.2.3.4", salt="a") != (
            anonymize("s@x.net", "r@y.net", "1.2.3.4", salt="b")
        )


class TestMessageLog:
    def test_delivery_delay(self):
        log = GreylistedMessageLog(
            message_key="k", attempt_times=[100.0, 500.0], delivered=True
        )
        assert log.delivery_delay == 400.0
        assert log.attempts == 2
        assert log.first_attempt == 100.0

    def test_undelivered_has_no_delay(self):
        log = GreylistedMessageLog(
            message_key="k", attempt_times=[100.0], delivered=False
        )
        assert log.delivery_delay is None

    def test_gaps(self):
        log = GreylistedMessageLog(
            message_key="k", attempt_times=[0.0, 300.0, 900.0]
        )
        assert log.inter_attempt_gaps() == [300.0, 600.0]

    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError):
            GreylistedMessageLog(message_key="k", attempt_times=[5.0, 1.0])


class TestSerialization:
    def _sample_logs(self):
        return [
            GreylistedMessageLog(
                message_key="aaaa", attempt_times=[0.0, 400.5], delivered=True
            ),
            GreylistedMessageLog(
                message_key="bbbb", attempt_times=[10.0], delivered=False
            ),
        ]

    def test_roundtrip(self):
        logs = self._sample_logs()
        parsed = parse_logs(dump_logs(logs))
        assert len(parsed) == 2
        assert parsed[0].message_key == "aaaa"
        assert parsed[0].delivered
        assert parsed[0].attempt_times == [0.0, 400.5]
        assert not parsed[1].delivered

    def test_empty(self):
        assert dump_logs([]) == ""
        assert parse_logs("") == []

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\naaaa delivered 0.000 400.000\n"
        parsed = parse_logs(text)
        assert len(parsed) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            parse_logs("just-one-token")

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            parse_logs("aaaa maybe 0.0")

    def test_delivery_delays_extraction(self):
        delays = delivery_delays(self._sample_logs())
        assert delays == [400.5]
