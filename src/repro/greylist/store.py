"""Triplet database with expiry.

Models the Postgrey on-disk database: per-triplet state (first-seen time,
attempt count, whether it has passed), plus the two expiry windows real
deployments enforce:

* ``retry_window`` — a greylisted triplet that never comes back within this
  window is forgotten (Postgrey ``--max-age`` for unconfirmed entries);
* ``whitelist_lifetime`` — a confirmed triplet stays whitelisted this long
  after its last use (Postgrey keeps entries ~35 days past last activity).

Storage is pluggable: :class:`TripletStore` is a policy veneer (clock,
expiry windows, expiry counters) over a
:class:`~repro.greylist.backends.TripletBackend` — the in-process dict by
default, SQLite/WAL or an append-only journal for state that must survive
the interpreter (see :mod:`repro.greylist.backends`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from ..sim.clock import Clock
from .triplet import Triplet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (backends->store)
    from .backends import TripletBackend

DAY = 86400.0


@dataclass(slots=True)
class TripletEntry:
    """State tracked for one triplet."""

    triplet: Triplet
    first_seen: float
    last_seen: float
    attempts: int = 1
    passed: bool = False
    passed_at: Optional[float] = None

    @property
    def age_at_last_seen(self) -> float:
        return self.last_seen - self.first_seen


class TripletStore:
    """Triplet database bound to the simulation clock.

    Parameters
    ----------
    clock:
        Simulation clock (the store never reads wall time).
    retry_window / whitelist_lifetime:
        The two Postgrey expiry windows (see module docstring).
    backend:
        Storage backend; ``None`` means a fresh in-memory dict
        (:class:`~repro.greylist.backends.MemoryBackend`) — the original
        behaviour.  All backends are bit-for-bit equivalent; durable ones
        additionally survive a restart.
    """

    def __init__(
        self,
        clock: Clock,
        retry_window: float = 2 * DAY,
        whitelist_lifetime: float = 35 * DAY,
        backend: Optional["TripletBackend"] = None,
    ) -> None:
        if retry_window <= 0 or whitelist_lifetime <= 0:
            raise ValueError("expiry windows must be positive")
        if backend is None:
            from .backends import MemoryBackend

            backend = MemoryBackend()
        self.clock = clock
        self.retry_window = retry_window
        self.whitelist_lifetime = whitelist_lifetime
        self.backend = backend
        self.expired_unconfirmed = 0
        self.expired_confirmed = 0

    # ------------------------------------------------------------------
    # Core access
    # ------------------------------------------------------------------
    def lookup(self, triplet: Triplet) -> Optional[TripletEntry]:
        """Fetch the live entry for a triplet, expiring it if stale.

        The expiry is counted only when this store's delete actually
        removed the row: under a shared backend a concurrent worker may
        have expired (or refreshed) the entry between the get and the
        delete, and its removal must be counted exactly once fleet-wide.
        """
        entry = self.backend.get(triplet)
        if entry is None:
            return None
        if self._is_expired(entry):
            if self.backend.delete(triplet):
                if entry.passed:
                    self.expired_confirmed += 1
                else:
                    self.expired_unconfirmed += 1
            return None
        return entry

    def observe(self, triplet: Triplet) -> TripletEntry:
        """Record one delivery attempt, creating the entry if new.

        Delegates to the backend's :meth:`record_attempt` compound op so
        shared backends can run the whole lookup → expire-if-stale →
        create-or-update sequence atomically; the single-process default
        reproduces the historical sequence bit-for-bit.
        """
        entry, expired = self.backend.record_attempt(
            triplet, self.clock.now, self.retry_window,
            self.whitelist_lifetime,
        )
        if expired == "confirmed":
            self.expired_confirmed += 1
        elif expired == "unconfirmed":
            self.expired_unconfirmed += 1
        return entry

    def mark_passed(self, triplet: Triplet) -> None:
        """Confirm a triplet (first post-threshold acceptance).

        Goes through :meth:`lookup` so live-expiry semantics apply: an
        expired-but-unswept triplet is expired (counted) and raises
        ``KeyError`` instead of being resurrected as confirmed past its
        retry window.  The backend applies the update transactionally.
        """
        entry = self.lookup(triplet)
        if entry is None:
            raise KeyError(f"unknown triplet {triplet}")
        if not entry.passed:
            now = self.clock.now
            self.backend.mark_passed(triplet, now)
            # Keep the caller's (possibly detached) entry in sync with
            # the stored row.
            entry.passed = True
            entry.passed_at = now

    def restore(self, entry: TripletEntry) -> None:
        """Insert a deserialized entry verbatim (snapshot load path)."""
        self.backend.put(entry)

    def _is_expired(self, entry: TripletEntry) -> bool:
        from .backends import entry_is_expired

        return entry_is_expired(
            entry, self.clock.now, self.retry_window, self.whitelist_lifetime
        )

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------
    def sweep(self) -> int:
        """Drop every expired entry; returns the number removed."""
        unconfirmed, confirmed = self.backend.expire(
            self.clock.now, self.retry_window, self.whitelist_lifetime
        )
        self.expired_unconfirmed += unconfirmed
        self.expired_confirmed += confirmed
        return unconfirmed + confirmed

    def entries(self) -> Iterable[TripletEntry]:
        return self.backend.scan()

    def flush(self) -> None:
        """Make buffered backend writes durable (no-op for memory)."""
        self.backend.flush()

    def close(self) -> None:
        """Flush and release backend resources."""
        self.backend.close()

    @property
    def size(self) -> int:
        return len(self.backend)

    @property
    def confirmed(self) -> int:
        return self.backend.confirmed_count()

    def __contains__(self, triplet: Triplet) -> bool:
        return self.lookup(triplet) is not None

    def __repr__(self) -> str:
        return (
            f"TripletStore(size={self.size}, confirmed={self.confirmed}, "
            f"backend={self.backend.name})"
        )
