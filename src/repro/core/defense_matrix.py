"""The per-sample defence-effectiveness matrix (paper Table II).

Each of the 11 malware samples is executed twice — once against a lab
server protected by greylisting, once against one protected by nolisting —
and the technique is marked *effective* when no spam message reached any
protected mailbox within the observation horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..botnet.campaign import SpamCampaign, make_recipient_list
from ..botnet.samples import Sample, collect_samples
from ..sim.rng import RandomStream
from .testbed import Defense, Testbed, TestbedConfig

#: Long enough for Kelihos' longest observed retry cluster (80-90 ks) to
#: play out, plus slack.
DEFAULT_HORIZON = 200000.0


@dataclass
class SampleRun:
    """One sample executed against one defence."""

    sample_label: str
    family: str
    defense: Defense
    spam_delivered: int
    total_attempts: int
    blocked: bool

    @property
    def effective(self) -> bool:
        """The Table II check-mark: did the defence stop all spam?"""
        return self.blocked


@dataclass
class DefenseMatrix:
    """The full Table II: sample x defence outcomes."""

    runs: List[SampleRun]

    def verdict(self, sample_label: str, defense: Defense) -> Optional[SampleRun]:
        for run in self.runs:
            if run.sample_label == sample_label and run.defense is defense:
                return run
        return None

    def family_verdicts(self, defense: Defense) -> Dict[str, bool]:
        """Per-family effectiveness (all samples of a family must agree)."""
        verdicts: Dict[str, bool] = {}
        for run in self.runs:
            if run.defense is not defense:
                continue
            if run.family in verdicts and verdicts[run.family] != run.effective:
                raise AssertionError(
                    f"samples of {run.family} disagree under {defense.value} "
                    "— the paper observed intra-family consistency"
                )
            verdicts[run.family] = run.effective
        return verdicts


def run_sample(
    sample: Sample,
    defense: Defense,
    seed: int = 11,
    recipients: int = 5,
    greylist_delay: float = 300.0,
    horizon: float = DEFAULT_HORIZON,
) -> SampleRun:
    """Execute one sample against one defence configuration."""
    testbed = Testbed(
        TestbedConfig(
            defense=defense,
            greylist_delay=greylist_delay,
            unprotected_recipients=set(),
        )
    )
    rng = RandomStream(seed, f"defense:{defense.value}:{sample.label}")
    bot = sample.build_bot(
        internet=testbed.internet,
        resolver=testbed.resolver,
        scheduler=testbed.scheduler,
        source_address=testbed.allocate_bot_address(),
        rng=rng,
    )
    campaign = SpamCampaign(
        sender=f"spam@{sample.family.name.lower().replace('(', '').replace(')', '')}.example",
        recipients=make_recipient_list(testbed.config.victim_domain, recipients),
    )
    for job in campaign.single_recipient_jobs():
        bot.assign(job)
    testbed.run(horizon=horizon)

    delivered = testbed.spam_delivered_to_protected()
    return SampleRun(
        sample_label=sample.label,
        family=sample.family.name,
        defense=defense,
        spam_delivered=delivered,
        total_attempts=len(bot.all_attempts()),
        blocked=(delivered == 0),
    )


def build_defense_matrix(
    seed: int = 11,
    recipients: int = 5,
    greylist_delay: float = 300.0,
    horizon: float = DEFAULT_HORIZON,
) -> DefenseMatrix:
    """Run all 11 samples against both defences (the full Table II)."""
    runs: List[SampleRun] = []
    for sample in collect_samples():
        for defense in (Defense.GREYLISTING, Defense.NOLISTING):
            runs.append(
                run_sample(
                    sample,
                    defense,
                    seed=seed,
                    recipients=recipients,
                    greylist_delay=greylist_delay,
                    horizon=horizon,
                )
            )
    return DefenseMatrix(runs=runs)
