"""Module-level shard task functions for the experiment runner.

Each function here is the unit of work one worker process executes: it
takes a single JSON-able payload dict, runs a slice of an experiment, and
returns a JSON-able result — which makes every task simultaneously
picklable (for the process pool) and cacheable (for the on-disk result
cache).

Tasks derive *all* randomness from their payload via the ``seed:label``
RNG-splitting scheme, so a payload's result is identical whether it runs
inline, in a worker, today or next week.  Imports of experiment modules
happen inside the functions: :mod:`repro.core` modules import this module
to fan themselves out, and lazy imports keep that cycle harmless.
"""

from __future__ import annotations

from typing import Any, Dict, List


# ----------------------------------------------------------------------
# Figure 2: one chunk of the adoption scan
# ----------------------------------------------------------------------
def adoption_shard_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Generate, scan and classify one chunk of the synthetic internet.

    Payload keys: ``population`` (canonical config params), ``seed``,
    ``glue_elision_rate``, ``chunk``, and optionally ``faults`` (canonical
    :func:`~repro.faults.model.fault_params`; absent means no injection —
    keeping fault-free payloads byte-identical to the pre-fault cache key).

    Fault draws are keyed by ``(fault seed, kind, scan index, name)``, so
    the chunk decomposition cannot change which domains or addresses fail.

    ``engine: "batch"`` routes the payload through the equivalence-class
    batch engine (:func:`repro.scan.batch.batched_adoption_shard`), which
    returns the identical result without building zones or probes;
    ``engine: "columnar"`` routes it through the columnar engine
    (:func:`repro.scan.columnar.columnar_adoption_shard`), which
    vectorizes the fault-free accounting over the chunk's columns.  The
    key is only present when batching, so object-path payloads keep their
    pre-batch cache identity.
    """
    if payload.get("engine") == "batch":
        from ..scan.batch import batched_adoption_shard

        return batched_adoption_shard(
            {k: v for k, v in payload.items() if k != "engine"}
        )
    if payload.get("engine") == "columnar":
        from ..scan.columnar import columnar_adoption_shard

        return columnar_adoption_shard(
            {k: v for k, v in payload.items() if k != "engine"}
        )

    from ..faults.model import FaultPlan, fault_from_params
    from ..scan.detect import DomainClass
    from ..scan.population import SyntheticInternet, population_from_params
    from ..scan.scanner import DNSScanner, SMTPScanner
    from ..sim.rng import RandomStream
    from ..core.adoption import _TRUTH_TO_CLASS

    config = population_from_params(payload["population"])
    seed = int(payload["seed"])
    internet = SyntheticInternet.shard(config, seed, [int(payload["chunk"])])

    faults = None
    if payload.get("faults") is not None:
        faults = FaultPlan(fault_from_params(payload["faults"]))

    rng = RandomStream(seed, "adoption-scan")
    dns_scanner = DNSScanner(
        internet,
        glue_elision_rate=float(payload["glue_elision_rate"]),
        rng=rng,
        faults=faults,
    )
    smtp_scanner = SMTPScanner(internet, faults=faults)

    dns_a = dns_scanner.scan(scan_index=0)
    dns_b = dns_scanner.scan(scan_index=1)
    repaired = dns_scanner.parallel_resolve(dns_a)
    repaired += dns_scanner.parallel_resolve(dns_b)
    smtp_a = smtp_scanner.scan(scan_index=0)
    smtp_b = smtp_scanner.scan(scan_index=1)

    from ..scan.detect import NolistingDetector

    detector = NolistingDetector(dns_a, smtp_a, dns_b, smtp_b)
    verdicts = detector.classify_all()
    summary = detector.summarize()

    truth_by_domain = {t.name: t.category for t in internet.domains}
    confusion = {"correct": 0, "wrong": 0}
    nolisting_domains: List[str] = []
    for verdict in verdicts:
        if verdict.domain_class is DomainClass.NOLISTING:
            nolisting_domains.append(verdict.domain)
        truth = truth_by_domain.get(verdict.domain)
        if truth is None:
            continue
        if verdict.domain_class is _TRUTH_TO_CLASS[truth]:
            confusion["correct"] += 1
        else:
            confusion["wrong"] += 1

    return {
        "total": summary.total_domains,
        "counts": {c.value: summary.counts.get(c, 0) for c in DomainClass},
        "flapped": summary.flapped,
        "servers": summary.servers_covered,
        "addresses": summary.addresses_covered,
        "repaired": repaired,
        "confusion": confusion,
        "nolisting_domains": sorted(nolisting_domains),
    }


# ----------------------------------------------------------------------
# Sensitivity harnesses: one seed per task
# ----------------------------------------------------------------------
def adoption_seed_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One full adoption experiment at one seed (Figure 2 sensitivity)."""
    from ..core.adoption import run_adoption_experiment
    from ..scan.detect import DomainClass

    run = run_adoption_experiment(
        num_domains=int(payload["num_domains"]), seed=int(payload["seed"])
    )
    percentages = run.measured_percentages()
    return {
        "nolisting_pct": percentages[DomainClass.NOLISTING],
        "one_mx_pct": percentages[DomainClass.ONE_MX],
        "misclassified": run.confusion["wrong"],
    }


def deployment_seed_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One deployment experiment at one seed (Figure 5 sensitivity)."""
    from ..analysis.bootstrap import bootstrap_ci, median
    from ..core.deployment import run_deployment_experiment

    seed = int(payload["seed"])
    run = run_deployment_experiment(
        num_messages=int(payload["num_messages"]), seed=seed
    )
    delays = run.delays
    ci = bootstrap_ci(delays, median, seed=seed, resamples=300)
    return {
        "median": median(delays),
        "ci": [ci.estimate, ci.low, ci.high, ci.level],
        "within_10min": run.fraction_delivered_within(600.0),
    }


# ----------------------------------------------------------------------
# Parameter sweeps: one grid point per task
# ----------------------------------------------------------------------
def internet_scale_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One what-if grid point of the internet-scale synthesis.

    ``engine: "batch"`` routes the point through the equivalence-class
    engine; the key is only present when batching, so object-path payloads
    keep their pre-batch cache identity.  ``store_backend`` follows the
    same idiom: present only off the default memory backend.
    """
    from ..core.internet_scale import run_internet_scale

    result = run_internet_scale(
        num_domains=int(payload["num_domains"]),
        greylisting_rate=float(payload["greylisting_rate"]),
        nolisting_rate=float(payload["nolisting_rate"]),
        messages=int(payload["messages"]),
        seed=int(payload["seed"]),
        engine=str(payload.get("engine", "object")),
        store_backend=str(payload.get("store_backend", "memory")),
    )
    return {
        "num_domains": result.num_domains,
        "greylisting_rate": result.greylisting_rate,
        "nolisting_rate": result.nolisting_rate,
        "spam_sent": result.spam_sent,
        "spam_delivered": result.spam_delivered,
        "per_family_delivered": result.per_family_delivered,
        "per_family_sent": result.per_family_sent,
        "predicted_block_rate": result.predicted_block_rate,
    }


def synergy_delay_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One greylist-delay point of the synergy threshold sweep.

    ``engine: "batch"`` routes the point through the equivalence-class
    engine; the key is only present when batching, so object-path payloads
    keep their pre-batch cache identity.  ``store_backend`` follows the
    same idiom: present only off the default memory backend.
    """
    from ..core.synergy import run_synergy_experiment

    result = run_synergy_experiment(
        "both",
        greylist_delay=float(payload["greylist_delay"]),
        reports_per_hour=float(payload["reports_per_hour"]),
        num_messages=int(payload["num_messages"]),
        seed=int(payload["seed"]),
        engine=str(payload.get("engine", "object")),
        store_backend=str(payload.get("store_backend", "memory")),
    )
    return {
        "configuration": result.configuration,
        "greylist_delay": result.greylist_delay,
        "reports_per_hour": result.reports_per_hour,
        "num_messages": result.num_messages,
        "delivered": result.delivered,
        "dnsbl_rejections": result.dnsbl_rejections,
        "listed_after": result.listed_after,
    }


# ----------------------------------------------------------------------
# Scorecard: one section per task
# ----------------------------------------------------------------------
def scorecard_section_task(payload: Dict[str, Any]) -> list:
    """Score one scorecard section; returns a list of ScorecardRow.

    Rows are plain dataclasses (picklable, not cached), so this task fans
    out over the pool but bypasses the JSON cache.
    """
    from ..core import scorecard

    section = payload["section"]
    return scorecard.score_section(
        section, seed=int(payload["seed"]), scale=float(payload["scale"])
    )
