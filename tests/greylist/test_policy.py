"""Unit tests for the Postgrey-compatible greylisting policy."""

import pytest

from repro.greylist.policy import GreylistAction, GreylistPolicy
from repro.greylist.triplet import Triplet
from repro.greylist.whitelist import Whitelist, default_provider_whitelist
from repro.net.address import IPv4Address
from repro.sim.clock import Clock

CLIENT = IPv4Address.parse("198.51.100.7")
OTHER = IPv4Address.parse("198.51.100.8")
SENDER = "alice@sender.example"
RCPT = "user@victim.example"


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def policy(clock):
    return GreylistPolicy(clock=clock, delay=300.0)


class TestCoreSemantics:
    def test_first_attempt_deferred(self, policy):
        decision = policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        assert not decision.accept
        assert decision.reply.code == 450
        assert policy.events[-1].action is GreylistAction.GREYLISTED_NEW

    def test_retry_before_threshold_deferred(self, clock, policy):
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(100)
        decision = policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        assert not decision.accept
        assert policy.events[-1].action is GreylistAction.GREYLISTED_EARLY

    def test_retry_after_threshold_passes(self, clock, policy):
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(301)
        decision = policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        assert decision.accept
        assert policy.events[-1].action is GreylistAction.PASSED

    def test_exact_threshold_passes(self, clock, policy):
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(300)
        assert policy.on_rcpt_to(CLIENT, SENDER, RCPT).accept

    def test_passed_triplet_stays_whitelisted(self, clock, policy):
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(301)
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(10)
        decision = policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        assert decision.accept
        assert policy.events[-1].action is GreylistAction.PASSED_KNOWN

    def test_zero_delay_still_requires_second_attempt(self, clock):
        policy = GreylistPolicy(clock=clock, delay=0.0)
        assert not policy.on_rcpt_to(CLIENT, SENDER, RCPT).accept
        clock.advance_by(1)
        assert policy.on_rcpt_to(CLIENT, SENDER, RCPT).accept

    def test_different_ip_restarts_triplet(self, clock, policy):
        # The Table III failure mode: provider farms rotating IPs.
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(301)
        decision = policy.on_rcpt_to(OTHER, SENDER, RCPT)
        assert not decision.accept
        assert policy.events[-1].action is GreylistAction.GREYLISTED_NEW

    def test_different_sender_restarts_triplet(self, clock, policy):
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(301)
        assert not policy.on_rcpt_to(CLIENT, "other@sender.example", RCPT).accept

    def test_message_content_is_irrelevant(self, clock, policy):
        # Same triplet, conceptually different messages: passes (the §V.A
        # confound the paper had to rule out).
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(301)
        assert policy.on_rcpt_to(CLIENT, SENDER, RCPT).accept

    def test_negative_delay_rejected(self, clock):
        with pytest.raises(ValueError):
            GreylistPolicy(clock=clock, delay=-1)


class TestWhitelisting:
    def test_static_whitelist_bypasses(self, clock):
        whitelist = Whitelist()
        whitelist.add_address(CLIENT)
        policy = GreylistPolicy(clock=clock, delay=300, whitelist=whitelist)
        decision = policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        assert decision.accept
        assert policy.events[-1].action is GreylistAction.WHITELISTED

    def test_sender_domain_whitelist(self, clock):
        policy = GreylistPolicy(
            clock=clock, delay=300, whitelist=default_provider_whitelist()
        )
        assert policy.on_rcpt_to(CLIENT, "someone@gmail.com", RCPT).accept

    def test_auto_whitelist_promotes_client(self, clock):
        policy = GreylistPolicy(
            clock=clock, delay=300, auto_whitelist_clients=2
        )
        for index in range(2):
            sender = f"s{index}@x.example"
            policy.on_rcpt_to(CLIENT, sender, RCPT)
            clock.advance_by(301)
            assert policy.on_rcpt_to(CLIENT, sender, RCPT).accept
        # Third triplet from the same client skips greylisting entirely.
        decision = policy.on_rcpt_to(CLIENT, "fresh@x.example", RCPT)
        assert decision.accept
        assert policy.events[-1].action is GreylistAction.AUTO_WHITELISTED

    def test_auto_whitelist_disabled_by_default(self, clock, policy):
        for index in range(5):
            sender = f"s{index}@x.example"
            policy.on_rcpt_to(CLIENT, sender, RCPT)
            clock.advance_by(301)
            policy.on_rcpt_to(CLIENT, sender, RCPT)
        assert not policy.on_rcpt_to(CLIENT, "fresh@x.example", RCPT).accept


class TestNetworkPrefixKeying:
    def test_slash24_keying_tolerates_pool_rotation(self, clock):
        policy = GreylistPolicy(clock=clock, delay=300, network_prefix=24)
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(301)
        # Different IP in the same /24 matches the same entry.
        assert policy.on_rcpt_to(OTHER, SENDER, RCPT).accept

    def test_slash24_keying_still_blocks_other_networks(self, clock):
        policy = GreylistPolicy(clock=clock, delay=300, network_prefix=24)
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(301)
        far = IPv4Address.parse("203.0.113.1")
        assert not policy.on_rcpt_to(far, SENDER, RCPT).accept


class TestIntrospection:
    def test_deferrals_and_passes(self, clock, policy):
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(301)
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        assert len(policy.deferrals()) == 1
        assert len(policy.passes()) == 1

    def test_pass_delay(self, clock, policy):
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        clock.advance_by(450)
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        t = Triplet(CLIENT, SENDER, RCPT)
        assert policy.pass_delay(t) == 450.0

    def test_pass_delay_none_when_never_passed(self, policy):
        policy.on_rcpt_to(CLIENT, SENDER, RCPT)
        assert policy.pass_delay(Triplet(CLIENT, SENDER, RCPT)) is None
