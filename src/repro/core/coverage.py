"""The §VI headline number: how much spam the two techniques stop.

Combines the Table II effectiveness verdicts with the Table I spam shares:
a family's spam counts as *prevented* when at least one of the techniques
blocks it.  The paper's conclusion — "over 70 % of the world spam is
prevented by using either one or the other technique" — follows from
Cutwail + Darkmailer falling to greylisting and Kelihos to nolisting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..botnet.families import (
    FAMILIES,
    TOTAL_GLOBAL_SPAM_SHARE,
    FamilyProfile,
    global_spam_share,
)
from .defense_matrix import DefenseMatrix, build_defense_matrix
from .testbed import Defense


@dataclass
class CoverageReport:
    """Spam-coverage arithmetic over the family verdicts."""

    blocked_by_greylisting: Dict[str, bool]
    blocked_by_nolisting: Dict[str, bool]

    def _family(self, name: str) -> FamilyProfile:
        for family in FAMILIES:
            if family.name == name:
                return family
        raise KeyError(name)

    def global_share_blocked(self, verdicts: Dict[str, bool]) -> float:
        """Fraction of *global* spam stopped by one technique."""
        return sum(
            global_spam_share(self._family(name))
            for name, blocked in verdicts.items()
            if blocked
        )

    @property
    def greylisting_share(self) -> float:
        return self.global_share_blocked(self.blocked_by_greylisting)

    @property
    def nolisting_share(self) -> float:
        return self.global_share_blocked(self.blocked_by_nolisting)

    @property
    def combined_share(self) -> float:
        """Global spam stopped when both defences are deployed together."""
        return sum(
            global_spam_share(self._family(name))
            for name in self.blocked_by_greylisting
            if self.blocked_by_greylisting[name]
            or self.blocked_by_nolisting.get(name, False)
        )

    @property
    def combined_covers_all_families(self) -> bool:
        """The paper's §VI claim: every studied family falls to at least one."""
        return all(
            self.blocked_by_greylisting.get(family.name, False)
            or self.blocked_by_nolisting.get(family.name, False)
            for family in FAMILIES
        )


def build_coverage_report(
    matrix: Optional[DefenseMatrix] = None, seed: int = 11
) -> CoverageReport:
    """Measure (not assume) the verdicts, then do the share arithmetic."""
    if matrix is None:
        matrix = build_defense_matrix(seed=seed)
    return CoverageReport(
        blocked_by_greylisting=matrix.family_verdicts(Defense.GREYLISTING),
        blocked_by_nolisting=matrix.family_verdicts(Defense.NOLISTING),
    )


#: The paper's reference value for the combined coverage.
PAPER_COMBINED_GLOBAL_SHARE = TOTAL_GLOBAL_SPAM_SHARE  # 70.69 %
