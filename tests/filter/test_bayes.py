"""Unit tests for the naive-Bayes content filter, corpus and policy."""

import pytest

from repro.filter.bayes import NaiveBayesFilter, tokenize
from repro.filter.corpus import build_corpus, evaluate, generate_ham, generate_spam
from repro.filter.policy import ContentFilterPolicy
from repro.net.address import IPv4Address
from repro.sim.rng import RandomStream
from repro.smtp.message import Envelope, Message

CLIENT = IPv4Address.parse("198.51.100.7")


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello WORLD") == ["hello", "world"]

    def test_keeps_spam_glyphs(self):
        assert "$$$" in tokenize("win $$$ now")

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   ---   ") == []


class TestNaiveBayes:
    def _trained(self):
        classifier = NaiveBayesFilter(threshold=0.9)
        classifier.train_many(
            ["win free money now", "cheap pills online", "claim your prize"],
            is_spam=True,
        )
        classifier.train_many(
            ["meeting at noon", "see attached report", "lunch tomorrow?"],
            is_spam=False,
        )
        return classifier

    def test_requires_training(self):
        classifier = NaiveBayesFilter()
        with pytest.raises(RuntimeError):
            classifier.spam_probability("anything")

    def test_spam_scores_high(self):
        classifier = self._trained()
        # Tiny training set: smoothing tempers the posterior, but spammy
        # text still scores far above ham.
        assert classifier.spam_probability("free money prize") > 0.8
        assert classifier.is_spam("win free prize now")

    def test_ham_scores_low(self):
        classifier = self._trained()
        assert classifier.spam_probability("report for the meeting") < 0.5
        assert not classifier.is_spam("see the attached report")

    def test_probability_bounds(self):
        classifier = self._trained()
        for text in ("free money", "meeting", "xyzzy unseen words"):
            assert 0.0 <= classifier.spam_probability(text) <= 1.0

    def test_top_spam_tokens(self):
        classifier = self._trained()
        top = [token for token, _ in classifier.top_spam_tokens(5)]
        assert any(t in top for t in ("free", "win", "pills", "prize"))

    def test_validation(self):
        with pytest.raises(ValueError):
            NaiveBayesFilter(threshold=1.5)
        with pytest.raises(ValueError):
            NaiveBayesFilter(smoothing=0)

    def test_stats_tracked(self):
        classifier = self._trained()
        classifier.spam_probability("x y z")
        assert classifier.stats.trained_spam == 3
        assert classifier.stats.trained_ham == 3
        assert classifier.stats.classified == 1


class TestCorpus:
    def test_deterministic(self):
        a = generate_spam(RandomStream(1, "s"), 10)
        b = generate_spam(RandomStream(1, "s"), 10)
        assert a == b

    def test_spam_and_ham_differ(self):
        spam = generate_spam(RandomStream(1, "s"), 20)
        ham = generate_ham(RandomStream(1, "h"), 20)
        assert not set(spam) & set(ham)

    def test_trained_filter_generalizes(self):
        corpus = build_corpus(seed=3)
        classifier = NaiveBayesFilter(threshold=0.9)
        classifier.train_many(corpus.train_spam, is_spam=True)
        classifier.train_many(corpus.train_ham, is_spam=False)
        recall, fp_rate = evaluate(classifier, corpus)
        assert recall > 0.95
        assert fp_rate < 0.05


class TestContentFilterPolicy:
    def _policy(self):
        corpus = build_corpus(seed=3)
        classifier = NaiveBayesFilter(threshold=0.9)
        classifier.train_many(corpus.train_spam, is_spam=True)
        classifier.train_many(corpus.train_ham, is_spam=False)
        return ContentFilterPolicy(classifier)

    def _decide(self, policy, subject, body):
        message = Message(
            sender="s@x.example",
            recipients=["r@victim.example"],
            subject=subject,
            body=body,
        )
        envelope = Envelope(
            sender=message.sender,
            recipient="r@victim.example",
            message_id=message.message_id,
        )
        return policy.on_message(CLIENT, envelope, message)

    def test_rejects_spam_content(self):
        policy = self._policy()
        decision = self._decide(
            policy, "offer", "win a free iphone now click here"
        )
        assert not decision.accept
        assert decision.reply.code == 554
        assert policy.rejections == 1

    def test_accepts_ham_content(self):
        policy = self._policy()
        decision = self._decide(
            policy, "agenda", "reminder the review meeting moved to noon"
        )
        assert decision.accept

    def test_bandwidth_accounted_either_way(self):
        policy = self._policy()
        self._decide(policy, "offer", "win a free iphone now click here")
        self._decide(policy, "agenda", "see the attached report")
        assert policy.bytes_received > 0
        assert len(policy.events) == 2

    def test_untrained_classifier_rejected(self):
        with pytest.raises(ValueError):
            ContentFilterPolicy(NaiveBayesFilter())
