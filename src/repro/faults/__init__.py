"""Seed-derived fault injection for the synthetic internet.

* :mod:`repro.faults.model` — :class:`FaultConfig` (rates + seed) and
  :class:`FaultPlan` (deterministic per-entity, per-epoch fault draws);
* :mod:`repro.faults.session` — :class:`ResettingSession`, the proxy that
  turns an established SMTP session into one that dies mid-dialogue.

Consumers: :class:`~repro.net.network.VirtualInternet` (host downtime,
port-25 flaps, connection resets), :class:`~repro.dns.resolver.StubResolver`
(SERVFAIL/timeout bursts, lame delegation) and the Figure 2 scanners
(per-scan transient outages the two-scan protocol filters).
"""

from .model import (
    FAULT_KINDS,
    FaultConfig,
    FaultPlan,
    fault_from_params,
    fault_params,
)
from .session import ResettingSession

__all__ = [
    "FAULT_KINDS",
    "FaultConfig",
    "FaultPlan",
    "ResettingSession",
    "fault_from_params",
    "fault_params",
]
