"""Greylisting key strategies (the variant space of Sochor's studies).

The paper's related work ([32]) "discusses different variants of
greylisting"; deployments differ mainly in *what they key on*:

* ``FULL_TRIPLET`` — classic Postgrey: (client IP, sender, recipient);
* ``CLIENT_NET_TRIPLET`` — same, with the client coarsened to its /24
  (tolerates small sender farms);
* ``SENDER_DOMAIN`` — (client IP, sender *domain*, recipient): tolerates
  per-message sender localparts from one origin (mailing lists, VERP);
* ``CLIENT_ONLY`` — pure IP greylisting: any retry from the IP after the
  delay whitelists the whole IP.

Each strategy is a pure function from the observed (client, sender,
recipient) to the stored key; the policy engine is otherwise identical,
which is exactly why the variants are comparable.
"""

from __future__ import annotations

import enum

from ..net.address import IPv4Address
from ..smtp.message import domain_of
from .triplet import Triplet

#: Sentinel localpart used when a strategy erases the sender or recipient.
_WILDCARD = "any"


class KeyStrategy(enum.Enum):
    """What the greylisting database keys on."""

    FULL_TRIPLET = "full-triplet"
    CLIENT_NET_TRIPLET = "client-net-triplet"
    SENDER_DOMAIN = "sender-domain"
    CLIENT_ONLY = "client-only"


def derive_key(
    strategy: KeyStrategy,
    client: IPv4Address,
    sender: str,
    recipient: str,
    network_prefix: int = 24,
) -> Triplet:
    """Map an observation to its database key under ``strategy``."""
    if strategy is KeyStrategy.FULL_TRIPLET:
        return Triplet(client, sender, recipient)
    if strategy is KeyStrategy.CLIENT_NET_TRIPLET:
        return Triplet(client, sender, recipient).network_key(network_prefix)
    if strategy is KeyStrategy.SENDER_DOMAIN:
        return Triplet(
            client, f"{_WILDCARD}@{domain_of(sender)}", recipient
        )
    if strategy is KeyStrategy.CLIENT_ONLY:
        return Triplet(client, f"{_WILDCARD}@{_WILDCARD}.invalid",
                       f"{_WILDCARD}@{_WILDCARD}.invalid")
    raise ValueError(f"unknown key strategy {strategy!r}")


def resists_sender_rotation(strategy: KeyStrategy) -> bool:
    """Does rotating envelope senders defeat this strategy's whitelist reuse?

    Under ``FULL_TRIPLET``/``CLIENT_NET_TRIPLET`` a rotating spammer never
    matches its own history — greylisting keeps blocking it (at the price
    of database growth).  Under ``SENDER_DOMAIN``/``CLIENT_ONLY`` a single
    successful pass whitelists the whole rotation.
    """
    return strategy in (
        KeyStrategy.FULL_TRIPLET,
        KeyStrategy.CLIENT_NET_TRIPLET,
    )
