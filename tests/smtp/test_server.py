"""Unit tests for the server-side SMTP state machine and policies."""

import pytest

from repro.net.address import IPv4Address
from repro.sim.clock import Clock
from repro.smtp import replies
from repro.smtp.message import Message
from repro.smtp.replies import Reply
from repro.smtp.server import (
    ConnectionPolicy,
    PolicyDecision,
    SessionState,
    SMTPServer,
)

CLIENT = IPv4Address.parse("198.51.100.7")


def make_server(**kwargs):
    return SMTPServer(hostname="smtp.victim.example", clock=Clock(), **kwargs)


def full_dialogue(server, message=None, recipient="user@victim.example"):
    if message is None:
        message = Message(sender="alice@sender.example", recipients=[recipient])
    session = server.session_factory(CLIENT)
    assert session.banner.code == replies.CODE_READY
    assert session.ehlo("client.sender.example").is_positive
    assert session.mail_from(message.sender).is_positive
    reply = session.rcpt_to(recipient)
    if not reply.is_positive:
        return session, reply
    return session, session.data(message)


class TestHappyPath:
    def test_full_delivery(self):
        server = make_server()
        _, reply = full_dialogue(server)
        assert reply.code == replies.CODE_OK
        assert server.stats.messages_accepted == 1
        assert len(server.mailbox) == 1
        assert server.log[0].accepted is True
        assert server.log[0].stage == "data"

    def test_helo_also_accepted(self):
        server = make_server()
        session = server.session_factory(CLIENT)
        assert session.helo("old-client").is_positive
        assert session.state is SessionState.GREETED

    def test_multiple_recipients_logged_individually(self):
        server = make_server()
        message = Message(
            sender="alice@sender.example",
            recipients=["u1@victim.example", "u2@victim.example"],
        )
        session = server.session_factory(CLIENT)
        session.ehlo("c")
        session.mail_from(message.sender)
        session.rcpt_to("u1@victim.example")
        session.rcpt_to("u2@victim.example")
        session.data(message)
        assert server.stats.envelopes_accepted == 2
        assert server.stats.messages_accepted == 1

    def test_second_transaction_same_session(self):
        server = make_server()
        session, reply = full_dialogue(server)
        assert reply.is_positive
        message = Message(
            sender="alice@sender.example", recipients=["u2@victim.example"]
        )
        assert session.mail_from(message.sender).is_positive
        assert session.rcpt_to("u2@victim.example").is_positive
        assert session.data(message).is_positive
        assert server.stats.messages_accepted == 2

    def test_quit_closes(self):
        server = make_server()
        session = server.session_factory(CLIENT)
        reply = session.quit()
        assert reply.code == replies.CODE_CLOSING
        assert session.state is SessionState.CLOSED


class TestSequenceEnforcement:
    def test_mail_before_helo_rejected(self):
        server = make_server()
        session = server.session_factory(CLIENT)
        reply = session.mail_from("a@b.net")
        assert reply.code == replies.CODE_BAD_SEQUENCE
        assert server.stats.protocol_errors == 1

    def test_rcpt_before_mail_rejected(self):
        server = make_server()
        session = server.session_factory(CLIENT)
        session.ehlo("c")
        assert session.rcpt_to("u@victim.example").code == replies.CODE_BAD_SEQUENCE

    def test_data_before_rcpt_rejected(self):
        server = make_server()
        message = Message(sender="a@b.net", recipients=["u@victim.example"])
        session = server.session_factory(CLIENT)
        session.ehlo("c")
        session.mail_from("a@b.net")
        assert session.data(message).code == replies.CODE_BAD_SEQUENCE

    def test_rset_clears_transaction(self):
        server = make_server()
        session = server.session_factory(CLIENT)
        session.ehlo("c")
        session.mail_from("a@b.net")
        session.rcpt_to("u@victim.example")
        session.rset()
        assert session.state is SessionState.GREETED
        message = Message(sender="a@b.net", recipients=["u@victim.example"])
        assert session.data(message).code == replies.CODE_BAD_SEQUENCE

    def test_bad_sender_syntax(self):
        server = make_server()
        session = server.session_factory(CLIENT)
        session.ehlo("c")
        assert session.mail_from("not-an-address").code == replies.CODE_PARAM_SYNTAX_ERROR

    def test_bad_recipient_syntax(self):
        server = make_server()
        session = server.session_factory(CLIENT)
        session.ehlo("c")
        session.mail_from("a@b.net")
        assert session.rcpt_to("nope").code == replies.CODE_PARAM_SYNTAX_ERROR


class TestRecipientValidation:
    def test_relay_denied_for_foreign_domain(self):
        server = make_server(local_domains=["victim.example"])
        _, reply = full_dialogue(server, recipient="user@other.example")
        assert reply.code == replies.CODE_USER_NOT_LOCAL
        assert server.log[-1].stage == "relay"

    def test_unknown_recipient_rejected_before_policy(self):
        # The paper notes servers refuse unknown recipients *before*
        # greylisting; the log stage must reflect that ordering.
        class CountingPolicy(ConnectionPolicy):
            def __init__(self):
                self.rcpt_calls = 0

            def on_rcpt_to(self, client, sender, recipient):
                self.rcpt_calls += 1
                return PolicyDecision.ok()

        policy = CountingPolicy()
        server = make_server(
            policy=policy,
            valid_recipients={"real@victim.example"},
        )
        _, reply = full_dialogue(server, recipient="ghost@victim.example")
        assert reply.code == replies.CODE_MAILBOX_UNAVAILABLE
        assert policy.rcpt_calls == 0
        assert server.log[-1].stage == "rcpt"

    def test_known_recipient_accepted(self):
        server = make_server(valid_recipients={"real@victim.example"})
        _, reply = full_dialogue(server, recipient="real@victim.example")
        assert reply.is_positive


class TestPolicyHooks:
    def test_connect_rejection_closes_session(self):
        class RejectAll(ConnectionPolicy):
            def on_connect(self, client):
                return PolicyDecision.reject(
                    Reply(replies.CODE_SERVICE_UNAVAILABLE, "go away")
                )

        server = make_server(policy=RejectAll())
        session = server.session_factory(CLIENT)
        assert session.banner.code == replies.CODE_SERVICE_UNAVAILABLE
        assert session.state is SessionState.CLOSED

    def test_rcpt_policy_rejection_logged(self):
        class Defer(ConnectionPolicy):
            def on_rcpt_to(self, client, sender, recipient):
                return PolicyDecision.reject(replies.greylisted(300))

        server = make_server(policy=Defer())
        _, reply = full_dialogue(server)
        assert reply.code == replies.CODE_MAILBOX_BUSY
        assert reply.is_transient_failure
        record = server.log[-1]
        assert record.stage == "policy"
        assert not record.accepted

    def test_message_policy_rejection(self):
        class RejectBody(ConnectionPolicy):
            def on_message(self, client, envelope, message):
                return PolicyDecision.reject(
                    Reply(replies.CODE_TRANSACTION_FAILED, "content")
                )

        server = make_server(policy=RejectBody())
        _, reply = full_dialogue(server)
        assert reply.code == replies.CODE_TRANSACTION_FAILED
        assert server.mailbox == []


class TestReplies:
    def test_reply_classes(self):
        assert Reply(250, "ok").is_positive
        assert Reply(354, "go").is_positive
        assert Reply(450, "grey").is_transient_failure
        assert Reply(550, "no").is_permanent_failure

    def test_implausible_code_rejected(self):
        with pytest.raises(ValueError):
            Reply(99)

    def test_greylisted_reply_format(self):
        reply = replies.greylisted(300)
        assert reply.code == 450
        assert "Greylisted" in reply.text
