"""Anonymized greylist log records.

The university dataset the paper analysed "contains, for each greylisted
message, the time of each attempted delivery from the client", anonymized
to timestamps only.  We model the same artefact: a
:class:`GreylistedMessageLog` per message, serializable to/from a plain
text format so the analysis code exercises a parse step just like the
authors' did.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional


def anonymize(sender: str, recipient: str, client: str, salt: str = "") -> str:
    """Hash identifying fields into an opaque message key."""
    payload = f"{salt}|{sender}|{recipient}|{client}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass
class GreylistedMessageLog:
    """All attempt timestamps for one greylisted message."""

    message_key: str
    attempt_times: List[float] = field(default_factory=list)
    delivered: bool = False
    #: optional ground-truth tag retained for validation (never serialized)
    sender_kind: Optional[str] = None

    def __post_init__(self) -> None:
        if sorted(self.attempt_times) != self.attempt_times:
            raise ValueError("attempt times must be non-decreasing")

    @property
    def first_attempt(self) -> Optional[float]:
        return self.attempt_times[0] if self.attempt_times else None

    @property
    def attempts(self) -> int:
        return len(self.attempt_times)

    @property
    def delivery_delay(self) -> Optional[float]:
        """Delay from first attempt to the accepting attempt.

        This is the quantity Figure 5 plots.  ``None`` when the message was
        never delivered (the sender gave up while greylisted).
        """
        if not self.delivered or len(self.attempt_times) < 1:
            return None
        return self.attempt_times[-1] - self.attempt_times[0]

    def inter_attempt_gaps(self) -> List[float]:
        return [
            b - a
            for a, b in zip(self.attempt_times, self.attempt_times[1:])
        ]


# ----------------------------------------------------------------------
# Plain-text serialization ("the anonymized log entries of the mail server")
# ----------------------------------------------------------------------

def dump_logs(logs: Iterable[GreylistedMessageLog]) -> str:
    """Serialize logs to the line format ``key status t1 t2 ...``."""
    lines = []
    for log in logs:
        status = "delivered" if log.delivered else "dropped"
        stamps = " ".join(f"{t:.3f}" for t in log.attempt_times)
        lines.append(f"{log.message_key} {status} {stamps}".rstrip())
    return "\n".join(lines) + ("\n" if lines else "")


def parse_logs(text: str) -> List[GreylistedMessageLog]:
    """Parse the :func:`dump_logs` format back into records."""
    logs: List[GreylistedMessageLog] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed log line {line_number}: {line!r}")
        key, status, *stamps = parts
        if status not in ("delivered", "dropped"):
            raise ValueError(
                f"unknown status {status!r} on log line {line_number}"
            )
        logs.append(
            GreylistedMessageLog(
                message_key=key,
                attempt_times=[float(s) for s in stamps],
                delivered=(status == "delivered"),
            )
        )
    return logs


def delivery_delays(logs: Iterable[GreylistedMessageLog]) -> List[float]:
    """Extract the Figure 5 sample: delays of delivered greylisted messages."""
    return [
        log.delivery_delay
        for log in logs
        if log.delivery_delay is not None
    ]
