"""Greylisting-variant comparison (Sochor's question, answered in-sim).

Deployments choose what to key greylisting on, trading robustness for
tolerance.  For each :class:`~repro.greylist.keying.KeyStrategy` this
experiment measures the three quantities the choice moves:

* **rotation resistance** — spam delivered by a bot that retries (so it
  would beat plain greylisting) *and* rotates envelope senders between
  retries, trying to ride a coarse key's whitelist;
* **farm tolerance** — delivery delay of a benign provider whose farm
  rotates source addresses inside one /24 (the Table III problem);
* **database load** — triplet entries created under rotating-sender spam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..greylist.keying import KeyStrategy
from ..greylist.policy import GreylistPolicy
from ..net.address import AddressPool, IPv4Network
from ..sim.clock import Clock
from ..sim.rng import RandomStream

#: All variants, in increasing coarseness.
ALL_STRATEGIES: Sequence[KeyStrategy] = (
    KeyStrategy.FULL_TRIPLET,
    KeyStrategy.CLIENT_NET_TRIPLET,
    KeyStrategy.SENDER_DOMAIN,
    KeyStrategy.CLIENT_ONLY,
)


@dataclass
class VariantResult:
    """Measured behaviour of one key strategy."""

    strategy: KeyStrategy
    rotating_spam_delivered: int
    rotating_spam_attempts: int
    farm_delivery_delay: float        # seconds; inf if never delivered
    db_entries_under_rotation: int

    @property
    def rotation_resistant(self) -> bool:
        return self.rotating_spam_delivered == 0


def _measure_rotating_spam(
    strategy: KeyStrategy, threshold: float, seed: int
) -> tuple:
    """A retrying bot that rotates senders between attempts.

    Modelled at the policy level: attempts every ``threshold`` seconds
    (so a stable key would pass on attempt 2), each with a fresh sender.
    Returns (delivered, attempts, db_entries).
    """
    clock = Clock()
    policy = GreylistPolicy(clock=clock, delay=threshold, key_strategy=strategy)
    client = AddressPool(IPv4Network.parse("198.51.100.0/24")).allocate()
    delivered = 0
    attempts = 0
    num_messages = 20
    retries_per_message = 4
    for message_index in range(num_messages):
        accepted = False
        for retry in range(retries_per_message):
            sender = (
                f"u{message_index}-{retry}@rot{message_index % 7}.example"
            )
            decision = policy.on_rcpt_to(
                client, sender, "victim@victim.example"
            )
            attempts += 1
            if decision.accept:
                accepted = True
                break
            clock.advance_by(threshold + 1.0)
        if accepted:
            delivered += 1
    return delivered, attempts, policy.store.size


def _measure_farm_delay(
    strategy: KeyStrategy, threshold: float, seed: int
) -> float:
    """A benign sender whose farm rotates addresses within one /24."""
    clock = Clock()
    policy = GreylistPolicy(clock=clock, delay=threshold, key_strategy=strategy)
    pool = AddressPool(IPv4Network.parse("203.0.113.0/24"))
    addresses = pool.allocate_many(4)
    rng = RandomStream(seed, f"farm:{strategy.value}")
    sender = "newsletter@bigprovider.example"
    recipient = "user@victim.example"
    start = clock.now
    # Retries every threshold seconds, rotating the pool round-robin.
    for attempt in range(40):
        client = addresses[attempt % len(addresses)]
        decision = policy.on_rcpt_to(client, sender, recipient)
        if decision.accept:
            return clock.now - start
        clock.advance_by(threshold + rng.uniform(1.0, 30.0))
    return float("inf")


def compare_variants(
    strategies: Sequence[KeyStrategy] = ALL_STRATEGIES,
    threshold: float = 300.0,
    seed: int = 47,
) -> List[VariantResult]:
    """Run the three measurements for every strategy."""
    results: List[VariantResult] = []
    for strategy in strategies:
        delivered, attempts, db_entries = _measure_rotating_spam(
            strategy, threshold, seed
        )
        farm_delay = _measure_farm_delay(strategy, threshold, seed)
        results.append(
            VariantResult(
                strategy=strategy,
                rotating_spam_delivered=delivered,
                rotating_spam_attempts=attempts,
                farm_delivery_delay=farm_delay,
                db_entries_under_rotation=db_entries,
            )
        )
    return results
