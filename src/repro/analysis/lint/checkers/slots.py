"""``SLT001`` — hot-path dataclasses without ``__slots__``.

The event scheduler (``sim/events.py``) and the per-packet network layer
(``net/``, ``smtp/wire.py``) instantiate their dataclasses millions of
times per experiment; PR 2's profiling showed per-instance ``__dict__``
allocation dominating those loops.  Any dataclass defined in one of
those hot modules must opt into ``slots=True`` (or declare ``__slots__``
itself) so a new field cannot silently reintroduce the cost.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from ..framework import Checker, ModuleContext

#: Subpackages whose classes are instantiated on per-event/per-packet paths.
HOT_PACKAGES = ("sim", "net")

#: Individual hot modules outside those packages.
HOT_MODULES = ("smtp/wire.py",)


def _dataclass_decorator(node: ast.ClassDef) -> ast.AST | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _has_slots(node: ast.ClassDef, decorator: ast.AST) -> bool:
    if isinstance(decorator, ast.Call):
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        if isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


class HotDataclassWithoutSlots(Checker):
    rule_id = "SLT001"
    severity = Severity.WARNING
    description = (
        "dataclass in a hot module (sim/, net/, smtp/wire.py) without "
        "slots=True; per-instance __dict__ costs dominate event loops"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return super().applies_to(ctx) and (
            ctx.in_package(*HOT_PACKAGES) or ctx.is_module(*HOT_MODULES)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _has_slots(node, decorator):
                yield self.finding(
                    ctx,
                    node,
                    f"dataclass `{node.name}` in a hot module lacks "
                    "slots=True; instances on per-event/per-packet paths "
                    "pay a __dict__ per object",
                    cls=node.name,
                )
