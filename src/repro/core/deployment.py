"""The real-deployment benign-delay measurement (paper §V.B, Figure 5).

Runs the synthetic university deployment (four months of mixed benign
traffic through a 300 s greylisting policy), extracts the delivery-delay
sample from the anonymized logs — through the same dump/parse round trip a
real log analysis would use — and builds the Figure 5 CDF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.cdf import EmpiricalCDF
from ..greylist.whitelist import Whitelist
from ..maillog.records import delivery_delays, dump_logs, parse_logs
from ..maillog.university import (
    DeploymentConfig,
    DeploymentResult,
    UniversityDeployment,
)


@dataclass
class DeploymentExperimentResult:
    """Figure 5's sample plus the deployment-health numbers around it."""

    threshold: float
    num_messages: int
    delivered: int
    lost: int
    delays: List[float]
    result: DeploymentResult

    def delay_cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF.from_samples(self.delays)

    @property
    def loss_rate(self) -> float:
        return self.result.loss_rate

    def fraction_delivered_within(self, bound_seconds: float) -> float:
        if not self.delays:
            return 0.0
        return sum(1 for d in self.delays if d <= bound_seconds) / len(
            self.delays
        )


def run_deployment_experiment(
    threshold: float = 300.0,
    num_messages: int = 2000,
    duration_days: float = 120.0,
    seed: int = 5,
    whitelist: Optional[Whitelist] = None,
) -> DeploymentExperimentResult:
    """Run the deployment and analyse its logs end to end."""
    config = DeploymentConfig(
        threshold=threshold,
        duration_days=duration_days,
        num_messages=num_messages,
        whitelist=whitelist,
    )
    result = UniversityDeployment(config, seed=seed).run()

    # Round-trip through the anonymized text format, like a real analysis.
    parsed = parse_logs(dump_logs(result.logs))
    delays = delivery_delays(parsed)

    return DeploymentExperimentResult(
        threshold=threshold,
        num_messages=len(result.logs),
        delivered=len(result.delivered),
        lost=len(result.lost),
        delays=delays,
        result=result,
    )
