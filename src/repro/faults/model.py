"""Deterministic fault model for the simulation substrate.

The paper's world-wide adoption measurement repeats its DNS + SMTP scan
two months apart precisely because the internet is flaky: hosts sit in
maintenance windows, resolvers SERVFAIL in bursts, delegations go lame,
and TCP sessions die mid-dialogue.  This module gives the substrates a
shared, seed-derived source of exactly those faults so the measurement
pipeline's transient-outage filtering becomes testable.

Every fault decision is a pure function of ``(fault seed, entity label,
epoch)`` drawn through the repository's standard ``seed:label``
RNG-splitting scheme: asking whether ``host-x`` is down during epoch 3
yields the same answer in any process, in any order, any number of times.
That property is what keeps the parallel experiment runner's
workers-1/2/4 bit-for-bit determinism intact with faults enabled.

Epochs quantize time into scheduled downtime windows.  Scanners use the
scan index as the epoch (each scan sees an independent fault draw, the
situation the paper's two-scan protocol is built to filter); clock-driven
simulations derive the epoch from the simulation time via
:meth:`FaultConfig.epoch_for`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..sim.rng import RandomStream

#: Fault kinds counted by :class:`FaultPlan` (observability, not results).
FAULT_KINDS = (
    "host_down",
    "port_flap",
    "dns_servfail",
    "dns_timeout",
    "lame_delegation",
    "connection_reset",
)


@dataclass(frozen=True)
class FaultConfig:
    """Rates and identity of the injected faults.

    All rates are per-(entity, epoch) Bernoulli probabilities except
    ``lame_delegation_rate``, which is per-zone and *persistent* — a lame
    delegation stays lame in every epoch, which is why the two-scan filter
    cannot (and should not) recover it.
    """

    seed: int = 0
    #: Probability a host is inside a downtime window during an epoch.
    host_outage_rate: float = 0.0
    #: Probability a host's port 25 flaps (refuses) during an epoch.
    port_flap_rate: float = 0.0
    #: Probability an authoritative DNS query SERVFAILs during an epoch.
    dns_servfail_rate: float = 0.0
    #: Probability an authoritative DNS query times out during an epoch.
    dns_timeout_rate: float = 0.0
    #: Probability a zone's delegation is (persistently) lame.
    lame_delegation_rate: float = 0.0
    #: Probability an established SMTP session is reset mid-dialogue.
    connection_reset_rate: float = 0.0
    #: Width of one downtime window in simulated seconds (clock epochs).
    epoch_length: float = 3600.0

    def __post_init__(self) -> None:
        for name in (
            "host_outage_rate",
            "port_flap_rate",
            "dns_servfail_rate",
            "dns_timeout_rate",
            "lame_delegation_rate",
            "connection_reset_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {rate}")
        if self.dns_servfail_rate + self.dns_timeout_rate > 1.0:
            raise ValueError("dns_servfail_rate + dns_timeout_rate > 1")
        if self.epoch_length <= 0:
            raise ValueError("epoch_length must be positive")

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultConfig":
        """One-knob constructor: every transient fault kind at ``rate``.

        This is what the CLI's ``--fault-rate`` builds.  Lame delegations
        stay off — they are persistent faults that no amount of re-scanning
        filters out, so they are opted into explicitly.
        """
        return cls(
            seed=seed,
            host_outage_rate=rate,
            port_flap_rate=rate,
            dns_servfail_rate=rate,
            dns_timeout_rate=rate / 2.0,
            connection_reset_rate=rate,
        )

    def epoch_for(self, now: float) -> int:
        """Quantize a simulation timestamp into a downtime-window index."""
        return int(now // self.epoch_length)

    @property
    def any_enabled(self) -> bool:
        return any(
            getattr(self, name) > 0.0
            for name in (
                "host_outage_rate",
                "port_flap_rate",
                "dns_servfail_rate",
                "dns_timeout_rate",
                "lame_delegation_rate",
                "connection_reset_rate",
            )
        )


def fault_params(config: FaultConfig) -> Dict[str, Any]:
    """Canonical, JSON-able description of a fault config (cache keys)."""
    return {
        "seed": config.seed,
        "host_outage_rate": config.host_outage_rate,
        "port_flap_rate": config.port_flap_rate,
        "dns_servfail_rate": config.dns_servfail_rate,
        "dns_timeout_rate": config.dns_timeout_rate,
        "lame_delegation_rate": config.lame_delegation_rate,
        "connection_reset_rate": config.connection_reset_rate,
        "epoch_length": config.epoch_length,
    }


def fault_from_params(params: Dict[str, Any]) -> FaultConfig:
    """Inverse of :func:`fault_params`."""
    return FaultConfig(
        seed=int(params["seed"]),
        host_outage_rate=float(params["host_outage_rate"]),
        port_flap_rate=float(params["port_flap_rate"]),
        dns_servfail_rate=float(params["dns_servfail_rate"]),
        dns_timeout_rate=float(params["dns_timeout_rate"]),
        lame_delegation_rate=float(params["lame_delegation_rate"]),
        connection_reset_rate=float(params["connection_reset_rate"]),
        epoch_length=float(params["epoch_length"]),
    )


class FaultPlan:
    """Answers "is this entity faulted right now?" deterministically.

    Each query derives a private :class:`RandomStream` from
    ``(config.seed, kind, epoch, entity)``, so the answers are independent
    of query order and of which other entities were ever asked about —
    the same stability contract the population generator's chunked
    generation relies on.  The plan also counts the faults it injects
    (:attr:`events`) for observability; counters never feed back into any
    decision.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._root = RandomStream(config.seed, "faults")
        self.events: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    # ------------------------------------------------------------------
    # Draw plumbing
    # ------------------------------------------------------------------
    def _stream(self, label: str) -> RandomStream:
        return self._root.split(label)

    def _hit(self, label: str, rate: float, kind: str) -> bool:
        if rate <= 0.0:
            return False
        if self._stream(label).random() < rate:
            self.events[kind] += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Host / port faults
    # ------------------------------------------------------------------
    def host_down(self, host: str, epoch: int) -> bool:
        """Whole-host downtime window (SYNs go unanswered)."""
        return self._hit(
            f"host:{epoch}:{host}", self.config.host_outage_rate, "host_down"
        )

    def port_closed(self, host: str, epoch: int) -> bool:
        """Port-25 flap: the host is up but its MTA is not listening."""
        return self._hit(
            f"port:{epoch}:{host}", self.config.port_flap_rate, "port_flap"
        )

    def smtp_down(self, host: str, epoch: int) -> bool:
        """Either failure mode a TCP/25 probe cannot tell apart."""
        return self.host_down(host, epoch) or self.port_closed(host, epoch)

    # ------------------------------------------------------------------
    # DNS faults
    # ------------------------------------------------------------------
    def dns_fault(self, name: str, epoch: int) -> Optional[str]:
        """``"servfail"``, ``"timeout"`` or ``None`` for one query name.

        A single draw splits the unit interval into servfail / timeout /
        healthy bands so the two failure kinds stay mutually exclusive.
        """
        servfail = self.config.dns_servfail_rate
        timeout = self.config.dns_timeout_rate
        if servfail <= 0.0 and timeout <= 0.0:
            return None
        draw = self._stream(f"dns:{epoch}:{name}").random()
        if draw < servfail:
            self.events["dns_servfail"] += 1
            return "servfail"
        if draw < servfail + timeout:
            self.events["dns_timeout"] += 1
            return "timeout"
        return None

    def zone_lame(self, apex: str) -> bool:
        """Persistently lame delegation for a zone (epoch-independent)."""
        return self._hit(
            f"lame:{apex}", self.config.lame_delegation_rate, "lame_delegation"
        )

    # ------------------------------------------------------------------
    # Connection faults
    # ------------------------------------------------------------------
    def session_reset_after(self, label: str) -> Optional[int]:
        """Commands an established session survives before a reset.

        Returns ``None`` for healthy sessions; otherwise a budget of 1–4
        commands, after which the session raises
        :class:`~repro.net.host.ConnectionReset` — mid-dialogue, the way
        real TCP resets land.  ``label`` must identify the connection
        uniquely and deterministically (the virtual internet uses its
        monotone connection counter).
        """
        rate = self.config.connection_reset_rate
        if rate <= 0.0:
            return None
        stream = self._stream(f"reset:{label}")
        if stream.random() >= rate:
            return None
        self.events["connection_reset"] += 1
        return stream.randint(1, 4)

    def __repr__(self) -> str:
        injected = {k: v for k, v in self.events.items() if v}
        return f"FaultPlan(seed={self.config.seed}, events={injected})"
