"""Authoritative DNS zones.

A :class:`Zone` holds the records for one domain (and hostnames under it).
The :class:`ZoneStore` is the global authoritative database the simulated
resolver queries.  Misconfiguration modes observed in the paper's DNS-ANY
dataset — MX records whose exchange has no A record, domains with no MX at
all — are first-class states here so the scan pipeline has to handle them
exactly like the authors' parallel re-resolving scanner did.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..net.address import IPv4Address
from .records import (
    ARecord,
    DNSRecordError,
    MXRecord,
    TXTRecord,
    normalize_name,
)


class Zone:
    """All records authoritative for one apex domain."""

    def __init__(self, apex: str) -> None:
        self.apex = normalize_name(apex)
        self._a: Dict[str, List[ARecord]] = {}
        self._mx: Dict[str, List[MXRecord]] = {}
        self._txt: Dict[str, List[TXTRecord]] = {}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_in_zone(self, name: str) -> str:
        name = normalize_name(name)
        if name != self.apex and not name.endswith("." + self.apex):
            raise DNSRecordError(
                f"name {name!r} does not belong to zone {self.apex!r}"
            )
        return name

    def add_a(self, name: str, address: IPv4Address, ttl: int = 3600) -> ARecord:
        name = self._check_in_zone(name)
        record = ARecord(name, address, ttl)
        self._a.setdefault(name, []).append(record)
        return record

    def add_mx(
        self, preference: int, exchange: str, name: Optional[str] = None, ttl: int = 3600
    ) -> MXRecord:
        owner = self._check_in_zone(name) if name else self.apex
        record = MXRecord(owner, preference, exchange, ttl)
        self._mx.setdefault(owner, []).append(record)
        return record

    def add_txt(self, name: str, text: str, ttl: int = 3600) -> TXTRecord:
        name = self._check_in_zone(name)
        record = TXTRecord(name, text, ttl)
        self._txt.setdefault(name, []).append(record)
        return record

    def remove_mx(self, name: Optional[str] = None) -> None:
        owner = normalize_name(name) if name else self.apex
        self._mx.pop(owner, None)

    def remove_a(self, name: str) -> None:
        self._a.pop(normalize_name(name), None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def a_records(self, name: str) -> List[ARecord]:
        return list(self._a.get(normalize_name(name), []))

    def mx_records(self, name: Optional[str] = None) -> List[MXRecord]:
        owner = normalize_name(name) if name else self.apex
        return list(self._mx.get(owner, []))

    def txt_records(self, name: str) -> List[TXTRecord]:
        return list(self._txt.get(normalize_name(name), []))

    def all_records(self) -> Iterable[object]:
        for records in self._a.values():
            yield from records
        for records in self._mx.values():
            yield from records
        for records in self._txt.values():
            yield from records

    def names(self) -> List[str]:
        """Every owner name with at least one record."""
        names = set(self._a) | set(self._mx) | set(self._txt)
        return sorted(names)

    def __repr__(self) -> str:
        return (
            f"Zone({self.apex!r}, a={sum(map(len, self._a.values()))}, "
            f"mx={sum(map(len, self._mx.values()))})"
        )


class ZoneStore:
    """The authoritative database of every zone on the virtual internet."""

    def __init__(self) -> None:
        self._zones: Dict[str, Zone] = {}

    def create(self, apex: str) -> Zone:
        apex = normalize_name(apex)
        if apex in self._zones:
            raise DNSRecordError(f"zone {apex!r} already exists")
        zone = Zone(apex)
        self._zones[apex] = zone
        return zone

    def get_or_create(self, apex: str) -> Zone:
        apex = normalize_name(apex)
        zone = self._zones.get(apex)
        return zone if zone is not None else self.create(apex)

    def delete(self, apex: str) -> None:
        self._zones.pop(normalize_name(apex), None)

    def zone_for(self, name: str) -> Optional[Zone]:
        """Find the most specific zone containing ``name``.

        Walks suffixes: a query for ``smtp.foo.net`` first tries the zone
        ``smtp.foo.net``, then ``foo.net``, then ``net``.
        """
        name = normalize_name(name)
        labels = name.split(".")
        for i in range(len(labels)):
            candidate = ".".join(labels[i:])
            zone = self._zones.get(candidate)
            if zone is not None:
                return zone
        return None

    @property
    def zones(self) -> Iterable[Zone]:
        return self._zones.values()

    @property
    def num_zones(self) -> int:
        return len(self._zones)

    def __contains__(self, apex: str) -> bool:
        return normalize_name(apex) in self._zones

    def __repr__(self) -> str:
        return f"ZoneStore(zones={self.num_zones})"
