"""Greylist mail logs: anonymized records and the university deployment."""

from .records import (
    GreylistedMessageLog,
    anonymize,
    delivery_delays,
    dump_logs,
    parse_logs,
)
from .university import (
    DEFAULT_SENDER_MIX,
    DeploymentConfig,
    DeploymentResult,
    UniversityDeployment,
)

__all__ = [
    "DEFAULT_SENDER_MIX",
    "DeploymentConfig",
    "DeploymentResult",
    "GreylistedMessageLog",
    "UniversityDeployment",
    "anonymize",
    "delivery_delays",
    "dump_logs",
    "parse_logs",
]
