"""Extension bench: the adoption x effectiveness synthesis.

Composes the paper's two measurement halves — who deploys the techniques
(Figure 2) and what each blocks (Table II) — into one end-to-end spam
wave over a mixed-deployment internet, and checks the measured block rate
against the analytic prediction.
"""

import pytest

from repro.analysis.tables import format_percent, render_table
from repro.core.internet_scale import (
    sweep_deployment_rates,
)

from _util import emit


def run_all():
    sweep = sweep_deployment_rates(
        rates=[(0.0, 0.0), (0.2, 0.05), (0.5, 0.1), (0.8, 0.2)],
        messages=400,
    )
    return sweep


def test_internet_scale_synthesis(benchmark):
    sweep = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = render_table(
        headers=(
            "Greylisting deployed",
            "Nolisting deployed",
            "Spam blocked (measured)",
            "Spam blocked (predicted)",
        ),
        rows=[
            (
                format_percent(r.greylisting_rate),
                format_percent(r.nolisting_rate),
                format_percent(r.block_rate),
                format_percent(r.predicted_block_rate),
            )
            for r in sweep
        ],
        title="Spam wave (Table I family mix) vs deployment levels",
    )
    emit("Synthesis — adoption x effectiveness", table)

    # No deployment, no protection.
    assert sweep[0].block_rate == 0.0
    # Block rate grows with deployment and tracks the analytic model.
    rates = [r.block_rate for r in sweep]
    assert all(b >= a - 0.02 for a, b in zip(rates, rates[1:]))
    for r in sweep:
        assert r.block_rate == pytest.approx(r.predicted_block_rate, abs=0.08)
