"""Misconfiguration pitfalls: settings that silently lose mail.

Greylisting's parameters interact with sender retry schedules; these tests
pin down the failure modes an operator must avoid.
"""


from repro.core.testbed import Defense, Testbed, TestbedConfig
from repro.dns.resolver import StubResolver
from repro.greylist.policy import GreylistPolicy
from repro.greylist.store import TripletStore
from repro.mta.profiles import PROFILES
from repro.mta.queue import QueueEntryState, QueueManager
from repro.mta.schedule import GiveUpAfterSchedule, TableSchedule
from repro.net.address import pool_for
from repro.smtp.client import SMTPClient
from repro.smtp.message import Message


def greylisted_testbed(delay=300.0, retry_window=None):
    testbed = Testbed(
        TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=delay)
    )
    if retry_window is not None:
        store = TripletStore(testbed.clock, retry_window=retry_window)
        testbed.greylist = GreylistPolicy(
            clock=testbed.clock, delay=delay, store=store
        )
        testbed.server.policy = testbed.greylist
    return testbed


def sender(testbed, schedule):
    client = SMTPClient(
        internet=testbed.internet,
        resolver=StubResolver(testbed.zones, clock=testbed.clock),
        source_address=pool_for("203.0.113.0/24").allocate(),
    )
    return QueueManager(testbed.scheduler, client, schedule)


def submit(queue):
    return queue.submit(
        Message(sender="a@x.example", recipients=["user@victim.example"])
    )[0]


class TestRetryWindowTooShort:
    def test_sparse_retrier_never_passes(self):
        # Greylist retry window 600 s, but the sender's first retry comes
        # at 900 s: by then the triplet is forgotten, every attempt looks
        # new, and the message dies at queue expiry.  A silent mail-loss
        # misconfiguration.
        testbed = greylisted_testbed(delay=300.0, retry_window=600.0)
        schedule = TableSchedule(
            ages=[900.0, 1800.0, 3600.0],
            max_queue_time=7200.0,
            repeat_last=False,
        )
        queue = sender(testbed, schedule)
        entry = submit(queue)
        testbed.run(horizon=86400.0)
        assert entry.state is not QueueEntryState.DELIVERED
        # Every attempt hit a fresh-looking triplet.
        from repro.greylist.policy import GreylistAction

        actions = {e.action for e in testbed.greylist.events}
        assert actions == {GreylistAction.GREYLISTED_NEW}

    def test_adequate_window_delivers(self):
        testbed = greylisted_testbed(delay=300.0, retry_window=3600.0)
        schedule = TableSchedule(
            ages=[900.0, 1800.0], max_queue_time=7200.0, repeat_last=False
        )
        queue = sender(testbed, schedule)
        entry = submit(queue)
        testbed.run(horizon=86400.0)
        assert entry.state is QueueEntryState.DELIVERED
        assert entry.delivery_delay == 900.0


class TestThresholdVsGiveUp:
    def test_threshold_beyond_giveup_loses_mail(self):
        # An aol-style sender that abandons after ~30 minutes meets a
        # 1-hour threshold: guaranteed loss.
        testbed = greylisted_testbed(delay=3600.0)
        schedule = GiveUpAfterSchedule(
            TableSchedule(ages=[300.0, 600.0, 1200.0, 1800.0],
                          max_queue_time=None, repeat_last=False),
            max_attempts=5,
        )
        queue = sender(testbed, schedule)
        entry = submit(queue)
        testbed.run(horizon=86400.0)
        assert entry.state is QueueEntryState.ABANDONED

    def test_every_stock_mta_survives_default_threshold(self):
        # The converse guarantee: Postgrey's 300 s default is safe for all
        # surveyed MTA defaults.
        for name, profile in sorted(PROFILES.items()):
            testbed = greylisted_testbed(delay=300.0)
            queue = sender(testbed, profile.schedule)
            entry = submit(queue)
            testbed.run(horizon=2 * 86400.0)
            assert entry.state is QueueEntryState.DELIVERED, name


class TestZeroAndHugeDelays:
    def test_zero_delay_still_two_attempts(self):
        testbed = greylisted_testbed(delay=0.0)
        queue = sender(testbed, PROFILES["postfix"].schedule)
        entry = submit(queue)
        testbed.run(horizon=7200.0)
        assert entry.state is QueueEntryState.DELIVERED
        assert entry.attempt_count == 2

    def test_threshold_beyond_queue_lifetime_loses_everything(self):
        # delay = 3 days vs exchange's 2-day queue: structural mail loss.
        testbed = greylisted_testbed(delay=3 * 86400.0)
        queue = sender(testbed, PROFILES["exchange"].schedule)
        entry = submit(queue)
        testbed.run(horizon=7 * 86400.0)
        assert entry.state is QueueEntryState.EXPIRED
