"""Greylisting x blacklisting synergy (the paper's §II rebuttal, measured).

Greylisting alone does not stop retrying malware (Kelihos, Figure 3), and
a reactive blacklist alone is too slow for fire-and-forget delivery — the
first attempt lands before the sender is listed.  The supporters' argument
is that the two *combine*: greylisting's forced delay gives the blacklist
time to list a mass-spammer, so the retry that would have passed the
greylist hits a DNSBL rejection instead.

:func:`run_synergy_experiment` measures exactly that: one bot family vs a
server running (a) greylisting only, (b) DNSBL only, (c) both stacked,
with a telemetry feed listing the bot's address at a configurable
reporting rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..blacklist.dnsbl import ReactiveBlacklist
from ..blacklist.feed import TelemetryFeed
from ..blacklist.policy import DNSBLPolicy
from ..botnet.campaign import SpamCampaign, make_recipient_list
from ..botnet.families import KELIHOS, FamilyProfile
from ..botnet.retry import FireAndForget
from ..dns.nolisting import setup_single_mx
from ..dns.resolver import StubResolver
from ..dns.zone import ZoneStore
from ..greylist.policy import GreylistPolicy
from ..net.address import AddressPool, IPv4Network
from ..net.network import VirtualInternet
from ..sim.batch import BatchCounters, SessionOutcomeCache
from ..sim.clock import Clock
from ..sim.events import EventScheduler
from ..sim.rng import RandomStream
from ..smtp.server import CompositePolicy, ConnectionPolicy, SMTPServer


@dataclass
class SynergyResult:
    """Outcome of one configuration run."""

    configuration: str            # "greylist", "dnsbl", "both"
    greylist_delay: Optional[float]
    reports_per_hour: Optional[float]
    num_messages: int
    delivered: int
    dnsbl_rejections: int
    listed_after: Optional[float]  # when the bot's IP got listed (if ever)

    @property
    def blocked(self) -> bool:
        return self.delivered == 0

    @property
    def delivery_rate(self) -> float:
        if self.num_messages == 0:
            return 0.0
        return self.delivered / self.num_messages


def run_synergy_experiment(
    configuration: str,
    family: FamilyProfile = KELIHOS,
    greylist_delay: float = 300.0,
    reports_per_hour: float = 60.0,
    detection_threshold: int = 10,
    processing_delay: float = 60.0,
    local_reporting: bool = False,
    num_messages: int = 20,
    seed: int = 31,
    horizon: float = 400000.0,
    engine: str = "object",
    session_cache: Optional[SessionOutcomeCache] = None,
    counters: Optional[BatchCounters] = None,
    store_backend: str = "memory",
) -> SynergyResult:
    """Run one bot against one policy configuration.

    ``configuration`` is one of ``"greylist"``, ``"dnsbl"``, ``"both"``.
    With the defaults, the time for the blacklist to list the bot is
    dominated by the telemetry rate: roughly ``detection_threshold /
    reports_per_hour`` hours plus the processing delay.  ``local_reporting``
    lets the victim server's own sightings count too (off by default so a
    single 20-recipient burst does not trip the threshold by itself and
    the rate lever stays meaningful).

    ``engine="batch"`` replays the telemetry draws to compute the listing
    time, resolves each message through memoized session playbooks
    (``session_cache``) plus its private retry-draw stream, and returns
    the identical result without running the event loop.  It refuses
    ``local_reporting=True`` (the victim's own sightings couple every
    message to shared blacklist state) and horizons long enough for
    auto-delisting — both need the object engine.  ``counters`` collects
    collapse accounting; both knobs are ignored by the object engine.
    """
    if configuration not in ("greylist", "dnsbl", "both"):
        raise ValueError(f"unknown configuration {configuration!r}")
    if engine not in ("object", "batch"):
        raise ValueError(f"unknown synergy engine {engine!r}")
    if engine == "batch":
        return _run_synergy_batched(
            configuration=configuration,
            family=family,
            greylist_delay=greylist_delay,
            reports_per_hour=reports_per_hour,
            detection_threshold=detection_threshold,
            processing_delay=processing_delay,
            local_reporting=local_reporting,
            num_messages=num_messages,
            seed=seed,
            horizon=horizon,
            session_cache=session_cache,
            counters=counters,
            store_backend=store_backend,
        )

    scheduler = EventScheduler(Clock())
    internet = VirtualInternet()
    zones = ZoneStore()
    resolver = StubResolver(zones, clock=scheduler.clock)
    server_pool = AddressPool(IPv4Network.parse("192.0.2.0/24"))
    bot_pool = AddressPool(IPv4Network.parse("198.51.100.0/24"))
    rng = RandomStream(seed, f"synergy:{configuration}")

    blacklist = ReactiveBlacklist(
        scheduler.clock,
        detection_threshold=detection_threshold,
        processing_delay=processing_delay,
    )
    feed = TelemetryFeed(
        scheduler,
        blacklist,
        rng.split("feed"),
        reports_per_hour=reports_per_hour,
    )

    policies: List[ConnectionPolicy] = []
    dnsbl_policy: Optional[DNSBLPolicy] = None
    if configuration in ("dnsbl", "both"):
        dnsbl_policy = DNSBLPolicy(blacklist, report_attempts=local_reporting)
        policies.append(dnsbl_policy)
    if configuration in ("greylist", "both"):
        policies.append(
            GreylistPolicy(
                clock=scheduler.clock,
                delay=greylist_delay,
                store_backend=store_backend,
            )
        )

    server = SMTPServer(
        hostname="smtp.victim.example",
        clock=scheduler.clock,
        policy=CompositePolicy(policies),
        local_domains=["victim.example"],
    )
    setup_single_mx(
        internet, zones, server_pool, "victim.example", server.session_factory
    )

    bot = family.build_bot(
        internet=internet,
        resolver=resolver,
        scheduler=scheduler,
        source_address=bot_pool.allocate(),
        rng=rng.split("bot"),
    )
    # The bot starts spraying the whole internet at t=0: the telemetry feed
    # begins reporting its address to the blacklist.
    feed.arm(bot.source_address)

    campaign = SpamCampaign(
        sender="spam@botnet.example",
        recipients=make_recipient_list("victim.example", num_messages),
    )
    # One private retry-randomness stream per message (see the batch
    # engine's soundness argument in :func:`_run_synergy_batched`).
    for index, job in enumerate(campaign.single_recipient_jobs()):
        bot.assign(job, rng=rng.split(f"msg:{index}"))
    scheduler.run(until=horizon)
    feed.disarm(bot.source_address)

    return SynergyResult(
        configuration=configuration,
        greylist_delay=(
            greylist_delay if configuration in ("greylist", "both") else None
        ),
        reports_per_hour=(
            reports_per_hour if configuration in ("dnsbl", "both") else None
        ),
        num_messages=num_messages,
        delivered=len(bot.delivered_tasks),
        dnsbl_rejections=dnsbl_policy.rejections if dnsbl_policy else 0,
        listed_after=blacklist.listed_at(bot.source_address),
    )


def _run_synergy_batched(
    configuration: str,
    family: FamilyProfile,
    greylist_delay: float,
    reports_per_hour: float,
    detection_threshold: int,
    processing_delay: float,
    local_reporting: bool,
    num_messages: int,
    seed: int,
    horizon: float,
    session_cache: Optional[SessionOutcomeCache] = None,
    counters: Optional[BatchCounters] = None,
    store_backend: str = "memory",
) -> SynergyResult:
    """The equivalence-class engine behind ``engine="batch"``.

    The object run has exactly three independent sources of dynamics, and
    each is replayed without the event loop:

    * the telemetry feed's private ``feed`` stream — its first
      ``detection_threshold`` inter-report gaps determine the listing
      time, and nothing else reads that stream;
    * one memoized session playbook per (dialect, policy fingerprint,
      phase), where the phase is the DNSBL state x greylist triplet age a
      retry arrives in;
    * each message's private ``msg:{i}`` retry-draw stream, walked
      arithmetically against the listing time and the greylist threshold.

    Soundness needs message independence, which is why
    ``local_reporting=True`` (victim sightings feed the shared blacklist)
    is refused, and a horizon within the listing lifetime, which keeps
    "listed" monotonic (the feed re-sights the address at least once per
    horizon, so auto-delisting cannot trigger mid-run).
    """
    from ..sim.batch import EquivalenceClassIndex
    from .playbooks import build_playbook

    if local_reporting:
        raise ValueError(
            "batch engine does not support local_reporting=True: the "
            "victim's own sightings couple every message to shared "
            "blacklist state; use engine='object'"
        )
    if reports_per_hour <= 0:
        raise ValueError("reporting rate must be positive")
    probe_blacklist = ReactiveBlacklist(
        Clock(),
        detection_threshold=detection_threshold,
        processing_delay=processing_delay,
    )
    if horizon > probe_blacklist.listing_lifetime:
        raise ValueError(
            "batch engine needs horizon <= the listing lifetime "
            f"({probe_blacklist.listing_lifetime}); longer runs can "
            "auto-delist mid-run and need engine='object'"
        )

    dnsbl_active = configuration in ("dnsbl", "both")
    grey_active = configuration in ("greylist", "both")

    rng = RandomStream(seed, f"synergy:{configuration}")

    # --- replay of the telemetry feed (armed in every configuration) -----
    feed_rng = rng.split("feed")
    rate_per_second = reports_per_hour / 3600.0
    t_report = 0.0
    for _ in range(detection_threshold):
        t_report += feed_rng.expovariate(rate_per_second)
    # Reports beyond the horizon never fire, so the address is only ever
    # listed when the threshold sighting lands inside the run.
    listed_at: Optional[float] = (
        t_report + processing_delay if t_report <= horizon else None
    )

    def listed(now: float) -> bool:
        return listed_at is not None and now >= listed_at

    # The composite fingerprint the object path's server would expose.
    policies: List[ConnectionPolicy] = []
    if dnsbl_active:
        policies.append(DNSBLPolicy(probe_blacklist, report_attempts=False))
    if grey_active:
        policies.append(
            GreylistPolicy(clock=Clock(), delay=greylist_delay)
        )
    fingerprint = CompositePolicy(policies).fingerprint()

    grey_kwargs = {"greylist_delay": greylist_delay} if grey_active else {}
    helo = family.helo_name
    cache = session_cache if session_cache is not None else SessionOutcomeCache()
    misses_before = cache.misses
    classes: EquivalenceClassIndex = EquivalenceClassIndex()

    def playbook(phase: tuple, is_listed: bool, grey_phase: str):
        return cache.get_or_build(
            (helo, fingerprint, phase),
            lambda: build_playbook(
                helo,
                dnsbl=dnsbl_active,
                listed=is_listed,
                greylist_phase=grey_phase,
                store_backend=store_backend,
                **grey_kwargs,
            ),
        )

    delivered = 0
    rejections = 0
    for index in range(num_messages):
        classes.add((family.name, configuration), index)
        # --- first attempt, at t=0 -----------------------------------
        if dnsbl_active and listed(0.0):
            if playbook(("listed",), True, "new").rejected:
                rejections += 1
            continue
        grey_part = ("new",) if grey_active else ()
        dnsbl_part = ("unlisted",) if dnsbl_active else ()
        first = playbook(dnsbl_part + grey_part, False, "new")
        if first.delivered:
            delivered += 1
            continue
        if not first.deferred:
            continue
        # --- deferred: walk the family's real retry schedule ----------
        model = family.retry_factory()
        if isinstance(model, FireAndForget):
            continue
        task_rng = rng.split(f"msg:{index}")
        t = 0.0
        attempts = 1
        while True:
            delay = model.next_delay(attempts, task_rng)
            if delay is None:
                break
            t += delay
            if t > horizon:
                break
            attempts += 1
            if dnsbl_active and listed(t):
                # DNSBL rejects before the greylist is even consulted —
                # the paper's synergy moment.
                if playbook(("listed",), True, "new").rejected:
                    rejections += 1
                break
            grey_phase = "passed" if t >= greylist_delay else "early"
            retry = playbook(
                dnsbl_part + (grey_phase,), False, grey_phase
            )
            if retry.delivered:
                delivered += 1
                break
            if not retry.deferred:
                break

    if counters is not None:
        counters.members += classes.num_members
        counters.classes += classes.num_classes
        counters.representative_runs += cache.misses - misses_before

    return SynergyResult(
        configuration=configuration,
        greylist_delay=greylist_delay if grey_active else None,
        reports_per_hour=reports_per_hour if dnsbl_active else None,
        num_messages=num_messages,
        delivered=delivered,
        dnsbl_rejections=rejections,
        listed_after=listed_at,
    )


def run_synergy_comparison(
    family: FamilyProfile = KELIHOS,
    greylist_delay: float = 300.0,
    reports_per_hour: float = 200.0,
    num_messages: int = 20,
    seed: int = 31,
) -> List[SynergyResult]:
    """The three-way comparison: each defence alone, then stacked.

    The default telemetry rate models an aggressive mass-spammer that the
    ecosystem notices within minutes — the kind of sender for which the
    paper's §II rebuttal ("the delay can be enough for the sender to be
    ... added into popular spammer blacklists") plays out: each defence
    alone fails, the stack blocks everything.
    """
    return [
        run_synergy_experiment(
            configuration,
            family=family,
            greylist_delay=greylist_delay,
            reports_per_hour=reports_per_hour,
            num_messages=num_messages,
            seed=seed,
        )
        for configuration in ("greylist", "dnsbl", "both")
    ]


def sweep_listing_speed(
    rates_per_hour: Sequence[float] = (2.0, 6.0, 20.0, 60.0, 200.0),
    greylist_delay: float = 300.0,
    num_messages: int = 20,
    seed: int = 31,
) -> List[SynergyResult]:
    """How fast must the blacklist be for the combination to win?

    Sweeps the telemetry reporting rate (a proxy for how aggressively the
    spammer sprays, hence how quickly it is noticed) with the stacked
    configuration.
    """
    return [
        run_synergy_experiment(
            "both",
            greylist_delay=greylist_delay,
            reports_per_hour=rate,
            num_messages=num_messages,
            seed=seed,
        )
        for rate in rates_per_hour
    ]


def sweep_greylist_delay(
    delays: Sequence[float] = (5.0, 300.0, 3600.0, 21600.0),
    reports_per_hour: float = 60.0,
    num_messages: int = 20,
    seed: int = 31,
    workers: int = 1,
    cache=None,
    engine: str = "object",
    store_backend: str = "memory",
) -> List[SynergyResult]:
    """Which greylisting threshold buys the blacklist enough time?

    Against a fast retrier like Kelihos, a short threshold lets the retry
    through before the blacklist catches up; a threshold longer than the
    listing time converts greylisting's useless-alone delay into a win —
    the quantitative version of the paper's §II rebuttal.

    Each delay point is an independent simulation; the sweep fans them
    over ``workers`` processes and memoizes points in ``cache``.
    ``engine="batch"`` runs each point on the equivalence-class engine
    (identical results, no event loop).
    """
    from ..runner.pool import run_tasks
    from ..runner.shards import synergy_delay_task

    if engine not in ("object", "batch"):
        raise ValueError(f"unknown synergy engine {engine!r}")
    payloads = [
        {
            "greylist_delay": delay,
            "reports_per_hour": reports_per_hour,
            "num_messages": num_messages,
            "seed": seed,
            # Only present when batching, so object-path payloads keep
            # their pre-batch-engine cache identity.
            **({"engine": engine} if engine != "object" else {}),
            # Same idiom: the key exists only off the default backend, so
            # memory-backend payloads keep their pre-backend cache identity.
            **(
                {"store_backend": store_backend}
                if store_backend != "memory"
                else {}
            ),
        }
        for delay in delays
    ]
    rows = run_tasks(
        synergy_delay_task,
        payloads,
        workers=workers,
        cache=cache,
        experiment="synergy-delay",
    )
    return [SynergyResult(**row) for row in rows]
