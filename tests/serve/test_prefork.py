"""Prefork supervisor tests: sockets, supervision, and the live fleet.

Two layers:

* Unit tests drive :class:`PreforkSupervisor` directly with throwaway
  worker bodies (real forks, real signals, no asyncio) to pin down the
  supervision contract — clean drain returns 0, a crash-looping worker
  exhausts the restart budget and returns 1.
* End-to-end tests boot the real CLI daemon (``--workers 2`` over the
  shm backend) as a subprocess and check the operational story: state
  written through one worker is visible to the other, a SIGKILLed
  worker is replaced without dropping the service, and SIGTERM drains
  the whole fleet to exit 0.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.serve.prefork import (
    DEFAULT_RESTART_LIMIT,
    PreforkSupervisor,
    bind_listening_sockets,
)

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


class TestBindListeningSockets:
    def test_one_socket_per_worker_same_port(self):
        sockets, host, port = bind_listening_sockets("127.0.0.1", 0, 3)
        try:
            assert host == "127.0.0.1"
            assert port > 0
            # SO_REUSEPORT is available on this platform: one accept
            # queue per worker, all on the announced port.
            assert len(sockets) == 3
            for sock in sockets:
                assert sock.getsockname() == (host, port)
                assert (
                    sock.getsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT)
                    != 0
                )
        finally:
            for sock in sockets:
                sock.close()

    def test_sockets_listen_before_any_fork(self):
        sockets, host, port = bind_listening_sockets("127.0.0.1", 0, 2)
        try:
            # A connect succeeds even though no worker exists yet: the
            # master listens at bind time, so clients racing worker boot
            # queue instead of being refused.
            probe = socket.create_connection((host, port), timeout=5)
            probe.close()
        finally:
            for sock in sockets:
                sock.close()

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            bind_listening_sockets("127.0.0.1", 0, 0)


def _drain_body(index, sock):
    """Worker that serves nothing and drains cleanly on SIGTERM."""
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    stop.wait(timeout=30)
    return 0 if stop.is_set() else 1


def _crash_body(index, sock):
    """Worker that dies immediately (the crash-loop scenario)."""
    return 1


class TestPreforkSupervisor:
    def _sockets(self, count):
        sockets, _, _ = bind_listening_sockets("127.0.0.1", 0, count)
        return sockets

    def test_sigterm_drains_fleet_to_zero(self):
        sockets = self._sockets(2)
        supervisor = PreforkSupervisor(_drain_body, sockets, 2)
        timer = threading.Timer(
            0.3, os.kill, args=(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            assert supervisor.run() == 0
        finally:
            timer.cancel()
            for sock in sockets:
                sock.close()
        assert supervisor.worker_pids == ()

    def test_crash_loop_exhausts_restart_budget(self):
        sockets = self._sockets(1)
        supervisor = PreforkSupervisor(
            _crash_body, sockets, 1, restart_limit=3
        )
        try:
            assert supervisor.run() == 1
        finally:
            for sock in sockets:
                sock.close()

    def test_restart_limit_default_is_generous(self):
        assert DEFAULT_RESTART_LIMIT >= 8

    def test_rejects_empty_configuration(self):
        sockets = self._sockets(1)
        try:
            with pytest.raises(ValueError):
                PreforkSupervisor(_drain_body, sockets, 0)
            with pytest.raises(ValueError):
                PreforkSupervisor(_drain_body, [], 1)
        finally:
            for sock in sockets:
                sock.close()


# ----------------------------------------------------------------------
# End-to-end: the real CLI daemon
# ----------------------------------------------------------------------
def boot_daemon(*extra_args, workers=2):
    """Start ``repro serve`` as a subprocess; returns (proc, host, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--workers", str(workers),
            "--store-backend", "shm",
            *extra_args,
            "serve", "--clock", "replay",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline().strip()
    assert line.startswith("listening on "), line
    host, _, port = line.rpartition(" ")[2].partition(":")
    return proc, host, int(port)


def ask(host, port, client, stamp, sender="a@b.example"):
    """One request over a fresh connection (fresh = kernel re-balances)."""
    sock = socket.create_connection((host, port), timeout=10)
    try:
        sock.sendall(
            (
                "request=smtpd_access_policy\n"
                f"client_address={client}\n"
                f"sender={sender}\n"
                "recipient=victim@victim.example\n"
                f"stamp={stamp}\n\n"
            ).encode()
        )
        data = b""
        while b"\n\n" not in data:
            chunk = sock.recv(4096)
            if not chunk:
                break
            data += chunk
    finally:
        sock.close()
    return data.decode().split("=", 1)[1].split(" ", 1)[0].strip()


def worker_pids_of(master_pid):
    children = set()
    task_dir = f"/proc/{master_pid}/task"
    for tid in os.listdir(task_dir):
        try:
            with open(f"{task_dir}/{tid}/children") as handle:
                children.update(int(p) for p in handle.read().split())
        except OSError:
            pass
    workers = set()
    for pid in children:
        try:
            with open(f"/proc/{pid}/cmdline", "rb") as handle:
                cmdline = handle.read().replace(b"\0", b" ")
        except OSError:
            continue  # raced its exit
        # Forked workers share the master's command line; the children
        # CPython spawns for itself (the shared-memory resource
        # tracker) do not and must not count as fleet members.
        if b"repro" in cmdline and b"resource_tracker" not in cmdline:
            workers.add(pid)
    return workers


def wait_for_workers(master_pid, count, timeout=20.0, gone=()):
    """Poll until ``count`` workers are live, none of them in ``gone``.

    A SIGKILLed worker lingers in the children list as a zombie until
    the master reaps it, so the caller excludes it explicitly.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pids = worker_pids_of(master_pid)
        if len(pids) == count and not (pids & set(gone)):
            return pids
        time.sleep(0.05)
    raise AssertionError(
        f"never saw {count} workers under {master_pid}; "
        f"last: {worker_pids_of(master_pid)}"
    )


def stop_daemon(proc):
    proc.send_signal(signal.SIGTERM)
    status = proc.wait(timeout=30)
    output = proc.stdout.read()
    proc.stdout.close()
    return status, output


class TestPreforkDaemon:
    def test_workers_share_one_triplet_table(self):
        """A triplet greylisted through one worker passes through any.

        Every request uses a fresh connection, so the kernel spreads
        them across both workers' accept queues; if the state were
        process-private some retries would be re-greylisted as new.
        """
        proc, host, port = boot_daemon()
        try:
            wait_for_workers(proc.pid, 2)
            for i in range(8):
                verb = ask(host, port, f"10.9.0.{i + 1}", stamp=float(i))
                assert verb == "DEFER_IF_PERMIT"
            for i in range(8):
                verb = ask(
                    host, port, f"10.9.0.{i + 1}", stamp=400.0 + i
                )
                assert verb == "DUNNO", f"triplet {i} lost across workers"
        finally:
            status, output = stop_daemon(proc)
        assert status == 0, output
        # Both workers drained cleanly and reported their share.
        assert output.count("served") == 2, output

    def test_sigkilled_worker_is_replaced_in_flight(self):
        proc, host, port = boot_daemon()
        try:
            before = wait_for_workers(proc.pid, 2)
            assert ask(host, port, "10.9.1.1", stamp=0.0) == "DEFER_IF_PERMIT"
            victim = sorted(before)[0]
            os.kill(victim, signal.SIGKILL)
            after = wait_for_workers(proc.pid, 2, gone={victim})
            assert victim not in after
            assert len(after - before) == 1
            # The fleet still serves, and the shared table survived the
            # crash: the pre-crash triplet passes its retry.
            assert ask(host, port, "10.9.1.1", stamp=400.0) == "DUNNO"
        finally:
            status, output = stop_daemon(proc)
        assert status == 0, output

    def test_single_worker_requires_no_prefork(self):
        """--workers 1 stays on the classic single-process path."""
        proc, host, port = boot_daemon(workers=1)
        try:
            assert worker_pids_of(proc.pid) == set()
            assert ask(host, port, "10.9.2.1", stamp=0.0) == "DEFER_IF_PERMIT"
        finally:
            status, output = stop_daemon(proc)
        assert status == 0, output

    def test_multi_worker_rejects_private_backends(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro",
                "--workers", "4", "--store-backend", "memory", "serve",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == 2
        assert "requires --store-backend shm" in proc.stderr
