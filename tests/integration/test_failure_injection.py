"""Failure-injection integration tests.

Distributed systems are defined by how they fail; these tests inject DNS
outages, host flaps and mid-experiment breakage into the substrates and
check the system degrades the way the components promise.
"""


from repro.botnet.families import DARKMAILER, KELIHOS
from repro.core.testbed import Defense, Testbed, TestbedConfig
from repro.dns.resolver import StubResolver
from repro.mta.profiles import PROFILES
from repro.mta.queue import QueueEntryState, QueueManager
from repro.net.address import pool_for
from repro.sim.rng import RandomStream
from repro.smtp.client import AttemptOutcome, SMTPClient
from repro.smtp.message import Message


def make_client(testbed, pool):
    return SMTPClient(
        internet=testbed.internet,
        resolver=StubResolver(testbed.zones, clock=testbed.clock),
        source_address=pool.allocate(),
    )


class TestDNSOutages:
    def test_servfail_defers_then_recovers(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        pool = pool_for("203.0.113.0/24")
        client = make_client(testbed, pool)
        client.resolver.break_zone("victim.example")
        queue = QueueManager(
            testbed.scheduler, client, PROFILES["postfix"].schedule
        )
        queue.submit(
            Message(
                sender="a@x.example", recipients=["user@victim.example"]
            )
        )
        # Repair DNS after two failed attempts (~10 minutes in).
        testbed.scheduler.schedule_at(
            700.0, lambda: client.resolver.repair_zone("victim.example")
        )
        testbed.run(horizon=7200.0)
        entry = queue.entries[0]
        assert entry.state is QueueEntryState.DELIVERED
        assert entry.attempt_count >= 2  # DNS failures consumed retries
        assert entry.attempts[0].outcome is AttemptOutcome.DNS_FAILURE

    def test_persistent_dns_outage_expires_the_message(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        pool = pool_for("203.0.113.0/24")
        client = make_client(testbed, pool)
        client.resolver.break_zone("victim.example")
        queue = QueueManager(
            testbed.scheduler, client, PROFILES["exchange"].schedule
        )
        queue.submit(
            Message(sender="a@x.example", recipients=["user@victim.example"])
        )
        testbed.run(horizon=3 * 86400.0)  # beyond exchange's 2-day lifetime
        assert queue.entries[0].state is QueueEntryState.EXPIRED

    def test_bot_gives_up_on_dns_outage(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        testbed.resolver.break_zone("victim.example")
        bot = DARKMAILER.build_bot(
            internet=testbed.internet,
            resolver=testbed.resolver,
            scheduler=testbed.scheduler,
            source_address=testbed.allocate_bot_address(),
            rng=RandomStream(1, "bot"),
        )
        bot.assign(
            Message(sender="s@bot.example", recipients=["u@victim.example"])
        )
        testbed.run(horizon=3600.0)
        assert bot.tasks[0].abandoned


class TestHostFlaps:
    def test_server_down_then_up_mid_delivery(self):
        testbed = Testbed(TestbedConfig(defense=Defense.NONE))
        pool = pool_for("203.0.113.0/24")
        client = make_client(testbed, pool)
        host = testbed.domain_setup.primary_host
        host.up = False
        queue = QueueManager(
            testbed.scheduler, client, PROFILES["postfix"].schedule
        )
        queue.submit(
            Message(sender="a@x.example", recipients=["user@victim.example"])
        )
        testbed.scheduler.schedule_at(400.0, lambda: setattr(host, "up", True))
        testbed.run(horizon=7200.0)
        entry = queue.entries[0]
        assert entry.state is QueueEntryState.DELIVERED
        assert entry.attempts[0].outcome is AttemptOutcome.NO_ROUTE

    def test_kelihos_survives_greylist_server_flap(self):
        # The bot's retry machinery tolerates the victim being briefly
        # unreachable between greylist rounds.
        testbed = Testbed(
            TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=300.0)
        )
        bot = KELIHOS.build_bot(
            internet=testbed.internet,
            resolver=testbed.resolver,
            scheduler=testbed.scheduler,
            source_address=testbed.allocate_bot_address(),
            rng=RandomStream(2, "kelihos"),
        )
        bot.assign(
            Message(sender="s@bot.example", recipients=["u@victim.example"])
        )
        host = testbed.domain_setup.primary_host
        testbed.scheduler.schedule_at(100.0, lambda: setattr(host, "up", False))
        testbed.scheduler.schedule_at(250.0, lambda: setattr(host, "up", True))
        testbed.run(horizon=200000.0)
        assert bot.tasks[0].delivered

    def test_greylist_state_survives_server_restart_via_snapshot(self):
        from repro.greylist.persistence import dump_store, load_store
        from repro.greylist.policy import GreylistPolicy

        testbed = Testbed(
            TestbedConfig(defense=Defense.GREYLISTING, greylist_delay=300.0)
        )
        pool = pool_for("203.0.113.0/24")
        client = make_client(testbed, pool)
        message = Message(
            sender="a@x.example", recipients=["user@victim.example"]
        )
        result = client.send(message, "user@victim.example")
        assert result.outcome is AttemptOutcome.DEFERRED

        # "Restart" the policy from a snapshot; history must carry over.
        snapshot = dump_store(testbed.greylist.store)
        restored = load_store(snapshot, testbed.clock)
        testbed.server.policy = GreylistPolicy(
            clock=testbed.clock, delay=300.0, store=restored
        )
        testbed.clock.advance_by(301.0)
        result = client.send(message, "user@victim.example")
        assert result.outcome is AttemptOutcome.DELIVERED
