"""Asyncio Postfix policy daemon serving the greylisting engine.

One process, one event loop, one :class:`~repro.serve.plugins.PluginChain`
— the concurrency model of postgrey and iRedAPD.  Every connection gets
an incremental :class:`~repro.serve.protocol.StanzaParser` and a tight
read → decide → respond loop; a burst of pipelined stanzas arriving in
one TCP segment is parsed, decided and answered in a single loop
iteration with one coalesced write, which is what carries the daemon
past 10k concurrent connections on a single core.

Time: the policy core reads ``clock.now`` and nothing else, so the
daemon chooses the clock:

* :class:`WallClock` — live serving; ``now`` is the host's wall time.
* :class:`ReplayClock` — a virtual clock advanced by the ``stamp``
  attribute the load generator attaches to each request, clamped
  monotonic.  With it, replayed simulator traffic produces bit-for-bit
  the simulator's decisions (the serve equivalence suite's contract).

Shutdown: SIGTERM/SIGINT stop the listener, already-connected peers get
``drain_grace`` seconds to finish their in-flight stanzas (buffered
requests are always answered — the handler finishes its current batch
synchronously), stragglers are aborted, and the backend is flushed
(SQLite commit / journal write-out) before the daemon exits 0.  The
drain test asserts no acknowledged triplet write is lost across this
sequence.

Blocking calls: the durable backends commit on the event loop (batched
by ``commit_every``, sub-millisecond in WAL mode) — the same
single-writer trade iRedAPD makes.  The ASY001 analyzer audits every
coroutine here; each remaining blocking sink is individually
``noqa``-annotated at its definition with that rationale.
"""

from __future__ import annotations

import asyncio
import signal
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..sim.clock import Clock
from .plugins import PluginChain
from .protocol import (
    MAX_REQUEST_BYTES,
    PolicyRequest,
    ProtocolError,
    StanzaParser,
    format_response,
)

#: How often (seconds) the background task flushes buffered backend
#: writes while serving.  Batching bound: a crash loses at most this
#: window plus ``commit_every`` un-flushed mutations.
FLUSH_INTERVAL = 1.0

#: Seconds connected peers get to finish in-flight stanzas on shutdown.
DRAIN_GRACE = 5.0


class ReplayClock(Clock):
    """Virtual clock advanced by request ``stamp`` attributes.

    Stamps arrive monotonically non-decreasing from the sequential
    replay harness; under concurrent load (the benchmark) they may
    interleave out of order, so the advance is clamped — time never
    moves backwards, matching the simulator's own clock contract.
    """

    __slots__ = ()

    def observe_stamp(self, stamp: Optional[float]) -> None:
        if stamp is not None and stamp > self.now:
            self.advance_to(stamp)


class WallClock(Clock):
    """Live-mode clock: ``now`` is the host's wall time.

    This is the one place the serving layer reads host time; simulation
    code never sees this class (the CLK001/DET001 analyzer rules keep it
    that way — the policy core stays clock-agnostic).
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(start=0.0)

    @property
    def now(self) -> float:
        # Live serving is *defined* by wall time: greylist delays must
        # measure real seconds for real MTAs retrying against us.
        return time.time()  # repro: noqa CLK001 - live serving mode is wall-time by definition

    def observe_stamp(self, stamp: Optional[float]) -> None:
        """Stamps are a replay artefact; live daemons ignore them."""


@dataclass
class ServerStats:
    """Counters the daemon accumulates while serving."""

    connections: int = 0
    decisions: int = 0
    protocol_errors: int = 0
    truncated: int = 0
    actions: Dict[str, int] = field(default_factory=dict)

    def record(self, action: str) -> None:
        self.decisions += 1
        verb = action.split(" ", 1)[0]
        self.actions[verb] = self.actions.get(verb, 0) + 1


class PolicyServer:
    """The asyncio policy-delegation daemon.

    Parameters
    ----------
    chain:
        The plugin chain answering requests.
    clock:
        The serving clock (:class:`WallClock` or :class:`ReplayClock`).
        Must be the same object the chain's stateful plugins read.
    host / port:
        Listen address; port 0 binds an ephemeral port (read it back
        from :attr:`address` — the CLI announces it on stdout).
    sock:
        A pre-bound listening socket to serve on instead of binding
        ``host:port`` — the prefork path, where the supervisor binds
        one SO_REUSEPORT socket per worker before forking so crashed
        workers can be respawned onto the same accept queue.
    flush_interval:
        Period of the background backend flush (0 disables it).
    drain_grace:
        Shutdown grace for in-flight connections (seconds).
    """

    def __init__(
        self,
        chain: PluginChain,
        clock: Clock,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        flush_interval: float = FLUSH_INTERVAL,
        drain_grace: float = DRAIN_GRACE,
        sock: Optional[socket.socket] = None,
    ) -> None:
        self.chain = chain
        self.clock = clock
        self.host = host
        self.port = port
        self._sock = sock
        self.max_request_bytes = max_request_bytes
        self.flush_interval = flush_interval
        self.drain_grace = drain_grace
        self.stats = ServerStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._flusher: Optional[asyncio.Task] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._handlers: Set[asyncio.Task] = set()
        self._stopping = asyncio.Event()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        # The asyncio default backlog (100) drops connects under the 10k
        # concurrent-connection benchmark's opening wave; the kernel caps
        # the effective value at net.core.somaxconn.
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=self._sock, backlog=8192
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.host, self.port, backlog=8192
            )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self.flush_interval > 0:
            self._flusher = asyncio.get_running_loop().create_task(
                self._flush_loop()
            )
        return self.host, self.port

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    async def run_until_signalled(self) -> int:
        """Serve until SIGTERM/SIGINT, then drain, flush and return 0."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self._stopping.set)
        try:
            await self._stopping.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            await self.shutdown()
        return 0

    def request_shutdown(self) -> None:
        """Signal :meth:`run_until_signalled` to stop (thread-safe not
        required: the daemon is single-loop by design)."""
        self._stopping.set()

    async def shutdown(self) -> None:
        """Graceful stop: drain in-flight connections, flush, close.

        Idempotent.  Ordering matters: stop accepting first, then give
        connected peers ``drain_grace`` to finish (their buffered
        stanzas are always decided and answered), then abort stragglers,
        and only then flush + close the backend — so every acknowledged
        decision's triplet write reaches durable storage.
        """
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handlers:
            await asyncio.wait(
                tuple(self._handlers), timeout=self.drain_grace
            )
        for writer in tuple(self._writers):
            writer.transport.abort()
        if self._handlers:
            for task in tuple(self._handlers):
                task.cancel()
            await asyncio.gather(*self._handlers, return_exceptions=True)
        if self._flusher is not None:
            self._flusher.cancel()
            try:
                await self._flusher
            except asyncio.CancelledError:
                pass
        self.chain.close()

    async def _flush_loop(self) -> None:
        while True:
            await asyncio.sleep(self.flush_interval)
            self.chain.flush()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._handle_connection(reader, writer)
        )
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        self._writers.add(writer)
        parser = StanzaParser(self.max_request_bytes)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    requests = parser.feed(data)
                except ProtocolError:
                    self.stats.protocol_errors += 1
                    break
                if not requests:
                    continue
                # One coalesced write per pipelined burst: N stanzas in
                # a segment cost one syscall out, not N.
                if len(requests) == 1:
                    writer.write(self._decide(requests[0]))
                else:
                    writer.write(
                        b"".join(self._decide(r) for r in requests)
                    )
                await writer.drain()
            if parser.pending:
                self.stats.truncated += 1
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _decide(self, request: PolicyRequest) -> bytes:
        self.clock.observe_stamp(request.stamp)  # type: ignore[attr-defined]
        action = self.chain.decide(request)
        self.stats.record(action)
        return format_response(action)
