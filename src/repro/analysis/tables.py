"""ASCII table rendering for the experiment reports.

The benchmark harness prints reproduced tables in the same row/column
structure as the paper; this module handles alignment and formatting.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

CHECK = "YES"
CROSS = "no"


def mark(flag: bool) -> str:
    """Render the paper's check/cross marks in ASCII."""
    return CHECK if flag else CROSS


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a list of rows as an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()

    separator = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(separator)))
    lines.append(fmt_row(list(headers)))
    lines.append(separator)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_percent(fraction: float, digits: int = 2) -> str:
    return f"{100.0 * fraction:.{digits}f}%"


def format_seconds(seconds: float) -> str:
    """Human-friendly duration: 90 -> '1m30s', 7260 -> '2h01m'."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    total = int(round(seconds))
    if total < 60:
        return f"{total}s"
    if total < 3600:
        minutes, secs = divmod(total, 60)
        return f"{minutes}m{secs:02d}s"
    hours, rem = divmod(total, 3600)
    minutes = rem // 60
    return f"{hours}h{minutes:02d}m"
