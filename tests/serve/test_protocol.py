"""Protocol-layer tests: incremental parsing, tolerances, hard errors."""

import pytest

from repro.serve.protocol import (
    ACTION_DUNNO,
    MAX_REQUEST_BYTES,
    PolicyRequest,
    ProtocolError,
    StanzaParser,
    format_request,
    format_response,
    iter_response_actions,
    parse_response,
)

#: A verbatim policy request as Postfix 3.x sends it (the attribute set
#: of the SMTPD_POLICY_README example, RCPT state).  The golden test
#: pins that a real recorded exchange parses to the expected attrs.
POSTFIX_TRANSCRIPT = (
    b"request=smtpd_access_policy\n"
    b"protocol_state=RCPT\n"
    b"protocol_name=SMTP\n"
    b"helo_name=some.domain.tld\n"
    b"queue_id=8045F2AB23\n"
    b"sender=foo@bar.tld\n"
    b"recipient=bar@foo.tld\n"
    b"recipient_count=0\n"
    b"client_address=1.2.3.4\n"
    b"client_name=another.domain.tld\n"
    b"reverse_client_name=another.domain.tld\n"
    b"instance=123.456.7\n"
    b"sasl_method=plain\n"
    b"sasl_username=you\n"
    b"sasl_sender=\n"
    b"size=12345\n"
    b"ccert_subject=solaris9.porcupine.org\n"
    b"ccert_issuer=Wietse+20Venema\n"
    b"ccert_fingerprint=C2:9D:F4:87:71:73:73:D9:18:E7:C2:F3:C1:DA:6E:04\n"
    b"encryption_protocol=TLSv1/SSLv3\n"
    b"encryption_cipher=DHE-RSA-AES256-SHA\n"
    b"encryption_keysize=256\n"
    b"etrn_domain=\n"
    b"stress=\n"
    b"ccert_pubkey_fingerprint=68:B3:29:DA:98:93:E3:40:99:C7:D8:AD:5C:B9:C9:40\n"
    b"client_port=1234\n"
    b"policy_context=submission\n"
    b"server_address=10.3.2.1\n"
    b"server_port=54321\n"
    b"\n"
)


class TestStanzaParser:
    def test_golden_postfix_transcript(self):
        requests = StanzaParser().feed(POSTFIX_TRANSCRIPT)
        assert len(requests) == 1
        request = requests[0]
        assert request.request == "smtpd_access_policy"
        assert request.protocol_state == "RCPT"
        assert request.client_address == "1.2.3.4"
        assert request.sender == "foo@bar.tld"
        assert request.recipient == "bar@foo.tld"
        assert request.helo_name == "some.domain.tld"
        # Unknown attributes are preserved verbatim, empty values too.
        assert request.get("queue_id") == "8045F2AB23"
        assert request.get("etrn_domain") == ""
        assert request.get("policy_context") == "submission"
        assert len(request.attrs) == 29

    def test_pipelined_burst_parses_in_one_feed(self):
        burst = b"".join(
            format_request(
                {
                    "request": "smtpd_access_policy",
                    "protocol_state": "RCPT",
                    "client_address": f"10.0.0.{i}",
                    "sender": f"s{i}@a.example",
                    "recipient": "r@b.example",
                }
            )
            for i in range(50)
        )
        requests = StanzaParser().feed(burst)
        assert [r.client_address for r in requests] == [
            f"10.0.0.{i}" for i in range(50)
        ]

    def test_stanza_split_across_arbitrary_feed_boundaries(self):
        wire = POSTFIX_TRANSCRIPT * 3
        for chunk in (1, 2, 3, 7, 64):
            parser = StanzaParser()
            seen = []
            for base in range(0, len(wire), chunk):
                seen.extend(parser.feed(wire[base : base + chunk]))
            assert len(seen) == 3
            assert all(r.client_address == "1.2.3.4" for r in seen)
            assert parser.pending == 0

    def test_terminator_straddling_two_feeds(self):
        parser = StanzaParser()
        assert parser.feed(b"request=smtpd_access_policy\n") == []
        requests = parser.feed(b"\n")
        assert len(requests) == 1
        assert parser.pending == 0

    def test_truncated_stanza_stays_pending(self):
        parser = StanzaParser()
        assert parser.feed(b"request=smtpd_access_policy\nsender=a@b.c\n") == []
        assert parser.pending > 0  # EOF now would mean a truncated request

    def test_unknown_keys_are_preserved(self):
        parser = StanzaParser()
        [request] = parser.feed(
            b"request=smtpd_access_policy\nfrobnicate=yes\n\n"
        )
        assert request.get("frobnicate") == "yes"

    def test_equals_in_value_splits_on_first(self):
        [request] = StanzaParser().feed(b"sender=a=b@c.example\n\n")
        assert request.sender == "a=b@c.example"

    def test_duplicate_attribute_keeps_last(self):
        [request] = StanzaParser().feed(
            b"sender=first@a.example\nsender=second@a.example\n\n"
        )
        assert request.sender == "second@a.example"

    def test_crlf_lines_parse(self):
        [request] = StanzaParser().feed(
            b"request=smtpd_access_policy\r\nsender=a@b.example\r\n\r\n"
        )
        assert request.sender == "a@b.example"

    def test_line_without_equals_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            StanzaParser().feed(b"this is not an attribute\n\n")

    def test_oversized_complete_stanza_is_protocol_error(self):
        parser = StanzaParser(max_request_bytes=128)
        wire = b"filler=" + b"x" * 200 + b"\n\n"
        with pytest.raises(ProtocolError):
            parser.feed(wire)

    def test_oversized_unterminated_stanza_is_protocol_error(self):
        parser = StanzaParser(max_request_bytes=128)
        with pytest.raises(ProtocolError):
            parser.feed(b"filler=" + b"x" * 200)

    def test_oversized_guard_spans_feeds(self):
        parser = StanzaParser(max_request_bytes=128)
        parser.feed(b"filler=" + b"x" * 100)
        with pytest.raises(ProtocolError):
            parser.feed(b"y" * 100)

    def test_default_cap_accepts_postfix_sized_requests(self):
        assert len(POSTFIX_TRANSCRIPT) < MAX_REQUEST_BYTES
        assert StanzaParser().feed(POSTFIX_TRANSCRIPT)

    def test_minimum_cap_enforced(self):
        with pytest.raises(ValueError):
            StanzaParser(max_request_bytes=8)


class TestRequestAccessors:
    def test_stamp_parses_float(self):
        assert PolicyRequest({"stamp": "1234.5"}).stamp == 1234.5

    def test_stamp_absent_is_none(self):
        assert PolicyRequest({}).stamp is None

    def test_stamp_malformed_is_none(self):
        assert PolicyRequest({"stamp": "not-a-float"}).stamp is None

    def test_missing_accessors_default_empty(self):
        request = PolicyRequest({})
        assert request.request == ""
        assert request.protocol_state == ""
        assert request.client_address == ""


class TestWireFormatting:
    def test_response_round_trip(self):
        assert parse_response(format_response("DUNNO")) == "DUNNO"
        wire = format_response("DEFER_IF_PERMIT 450 4.2.0 Greylisted")
        assert wire.endswith(b"\n\n")
        assert parse_response(wire) == "DEFER_IF_PERMIT 450 4.2.0 Greylisted"

    def test_response_bytes_are_cached(self):
        assert format_response(ACTION_DUNNO) is format_response(ACTION_DUNNO)

    def test_request_round_trip(self):
        attrs = {
            "request": "smtpd_access_policy",
            "protocol_state": "RCPT",
            "client_address": "1.2.3.4",
            "sender": "a@b.example",
            "recipient": "c@d.example",
        }
        [parsed] = StanzaParser().feed(format_request(attrs))
        assert parsed.attrs == attrs

    def test_response_without_action_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_response(b"verdict=DUNNO\n\n")

    def test_iter_response_actions_consumes_and_keeps_residue(self):
        buffer = bytearray(
            format_response("DUNNO") + format_response("OK") + b"action=PART"
        )
        assert list(iter_response_actions(buffer)) == ["DUNNO", "OK"]
        assert bytes(buffer) == b"action=PART"
