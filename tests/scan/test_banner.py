"""Unit tests for banner grabbing and software fingerprinting."""

import pytest

from repro.scan.banner import (
    SOFTWARE_BY_NAME,
    SOFTWARE_PROFILES,
    BannerGrabScanner,
    HostSoftwareAssignment,
    fingerprint_banner,
    survey_software,
)
from repro.scan.population import PopulationConfig, SyntheticInternet


@pytest.fixture(scope="module")
def world():
    internet = SyntheticInternet(PopulationConfig(num_domains=1500), seed=11)
    assignment = HostSoftwareAssignment(internet, seed=11)
    scanner = BannerGrabScanner(internet, assignment)
    return internet, assignment, scanner


class TestFingerprinting:
    def test_each_profile_fingerprints_to_itself(self):
        for profile in SOFTWARE_PROFILES:
            banner = profile.banner_for("smtp.example.net")
            assert fingerprint_banner(banner) == profile.name, profile.name

    def test_unknown_banner_is_other(self):
        assert fingerprint_banner("220 weird banner here") == "other"
        assert fingerprint_banner("banana") == "other"

    def test_qmail_bare_esmtp_shape(self):
        assert fingerprint_banner("220 mx.example.net ESMTP") == "qmail"

    def test_market_shares_sum_to_one(self):
        assert sum(p.market_share for p in SOFTWARE_PROFILES) == pytest.approx(1.0)


class TestAssignment:
    def test_assignment_deterministic(self, world):
        internet, assignment, _ = world
        address = internet.all_mail_addresses()[0]
        fresh = HostSoftwareAssignment(internet, seed=11)
        assert assignment.software_for(address) is SOFTWARE_BY_NAME[
            fresh.software_for(address).name
        ]
        assert assignment.offers_starttls(address) == fresh.offers_starttls(
            address
        )

    def test_assignment_roughly_matches_market_share(self, world):
        internet, assignment, _ = world
        counts = {}
        addresses = internet.all_mail_addresses()
        for address in addresses:
            name = assignment.software_for(address).name
            counts[name] = counts.get(name, 0) + 1
        postfix_share = counts.get("postfix", 0) / len(addresses)
        assert 0.25 < postfix_share < 0.41


class TestBannerScan:
    def test_only_listening_hosts_answer(self, world):
        internet, _, scanner = world
        dataset = scanner.scan(0)
        listening = {
            a for a in internet.all_mail_addresses()
            if internet.is_listening(a, 0)
        }
        assert {r.address for r in dataset} == listening

    def test_banners_carry_hostnames(self, world):
        internet, _, scanner = world
        dataset = scanner.scan(0)
        record = dataset.records[0]
        assert record.banner.startswith("220 ")
        assert ".dom" in record.banner  # generated hostnames

    def test_survey_roundtrip(self, world):
        _, _, scanner = world
        survey = survey_software(scanner.scan(0))
        assert survey.total_hosts == sum(survey.software_counts.values())
        assert 0.0 < survey.starttls_fraction < 1.0
        # postfix should be the most common software at these shares.
        assert survey.ranked()[0][0] in ("postfix", "exim")
        assert survey.fraction("postfix") > survey.fraction("courier")

    def test_survey_fingerprints_match_assignment(self, world):
        internet, assignment, scanner = world
        dataset = scanner.scan(0)
        for record in dataset.records[:50]:
            truth = assignment.software_for(record.address).name
            assert fingerprint_banner(record.banner) == truth

    def test_empty_survey(self):
        from repro.scan.banner import BannerDataset

        survey = survey_software(BannerDataset(scan_index=0))
        assert survey.total_hosts == 0
        assert survey.starttls_fraction == 0.0
        assert survey.fraction("postfix") == 0.0
