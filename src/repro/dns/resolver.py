"""Stub resolver with caching and error semantics.

The resolver answers A / MX / ANY queries against a :class:`ZoneStore`.  It
implements the behaviours the paper's measurement pipeline depends on:

* **NXDOMAIN** vs **NODATA** distinction (a domain that exists but lacks MX
  records is "no data", not "no domain");
* **additional-section elision** — real DNS answers often omit the glue A
  record for an MX exchange, forcing the client to issue a second query.
  The paper's authors had to build a "parallel scanner" to re-resolve those;
  our resolver models elision probabilistically so the scan pipeline must do
  the same;
* a positive **cache** honouring TTLs against the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple, Union

from ..net.address import IPv4Address
from ..sim.clock import Clock
from ..sim.rng import RandomStream
from .records import ARecord, MXRecord, normalize_name
from .zone import ZoneStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.model import FaultPlan


class DNSError(Exception):
    """Base class for resolution failures."""


class NXDomain(DNSError):
    """The queried name does not exist in any zone."""


class ServFail(DNSError):
    """The authoritative server failed (simulated outage)."""


class DNSTimeout(DNSError):
    """The query went unanswered (injected resolver/network fault)."""


@dataclass
class MXAnswer:
    """Answer to an MX query.

    ``additional`` carries the glue A records the server chose to include;
    exchanges absent from it must be resolved with a follow-up A query
    (mirroring the incomplete records in the scans.io DNS-ANY dataset).
    """

    name: str
    records: List[MXRecord]
    additional: Dict[str, IPv4Address] = field(default_factory=dict)


class StubResolver:
    """Caching stub resolver over an authoritative :class:`ZoneStore`.

    Parameters
    ----------
    zones:
        Authoritative data.
    clock:
        Simulation clock used for TTL accounting.  Optional; without a clock
        the cache never expires (fine for single-instant scans).
    glue_elision_rate:
        Probability that the glue A record for an MX exchange is omitted
        from the additional section (0 disables elision).
    rng:
        Randomness for glue elision; required when ``glue_elision_rate > 0``.
    faults:
        Optional :class:`~repro.faults.model.FaultPlan`.  Authoritative
        queries (cache misses only — cached answers never touch the flaky
        server) may then SERVFAIL, time out, or hit a persistently lame
        delegation, all drawn deterministically per ``(name, epoch)``.
    fault_epoch:
        Downtime-window index for fault draws: an int pins it (scanners
        pass the scan index), a callable is evaluated per query
        (clock-driven simulations).
    """

    def __init__(
        self,
        zones: ZoneStore,
        clock: Optional[Clock] = None,
        glue_elision_rate: float = 0.0,
        rng: Optional[RandomStream] = None,
        faults: Optional["FaultPlan"] = None,
        fault_epoch: Union[int, Callable[[], int]] = 0,
    ) -> None:
        if not 0.0 <= glue_elision_rate <= 1.0:
            raise ValueError("glue_elision_rate must be within [0, 1]")
        if glue_elision_rate > 0 and rng is None:
            raise ValueError("glue elision requires an rng")
        self.zones = zones
        self.clock = clock
        self.glue_elision_rate = glue_elision_rate
        self._rng = rng
        self._faults = faults
        self._fault_epoch = fault_epoch
        self._a_cache: Dict[str, Tuple[float, List[ARecord]]] = {}
        self._mx_cache: Dict[str, Tuple[float, List[MXRecord]]] = {}
        self.queries = 0
        self.cache_hits = 0
        self._broken_zones: Set[str] = set()
        #: chronological (qtype, name, answer-summary) triples of every
        #: authoritative query — the wire trace Figure 1 renders.
        self.query_log: List[Tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def break_zone(self, apex: str) -> None:
        """Make every query under ``apex`` SERVFAIL (simulated outage)."""
        self._broken_zones.add(normalize_name(apex))

    def repair_zone(self, apex: str) -> None:
        self._broken_zones.discard(normalize_name(apex))

    def _check_broken(self, name: str) -> None:
        labels = name.split(".")
        for i in range(len(labels)):
            if ".".join(labels[i:]) in self._broken_zones:
                raise ServFail(f"authoritative server for {name!r} failed")

    def _check_faults(self, qtype: str, name: str) -> None:
        """Injected transient faults for one authoritative query."""
        if self._faults is None:
            return
        epoch = (
            self._fault_epoch()
            if callable(self._fault_epoch)
            else self._fault_epoch
        )
        outcome = self._faults.dns_fault(name, epoch)
        if outcome == "servfail":
            self.query_log.append((qtype, name, "SERVFAIL"))
            raise ServFail(f"{name!r} SERVFAIL (injected, epoch {epoch})")
        if outcome == "timeout":
            self.query_log.append((qtype, name, "TIMEOUT"))
            raise DNSTimeout(f"{name!r} timed out (injected, epoch {epoch})")

    def _check_lame(self, qtype: str, apex: str) -> None:
        """Injected persistently lame delegation for a zone."""
        if self._faults is not None and self._faults.zone_lame(apex):
            self.query_log.append((qtype, apex, "SERVFAIL (lame)"))
            raise ServFail(f"lame delegation for zone {apex!r}")

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    def _cache_get(self, cache: Dict, name: str) -> Optional[list]:
        hit = cache.get(name)
        if hit is None:
            return None
        expires, records = hit
        if self.clock is not None and self._now() >= expires:
            del cache[name]
            return None
        self.cache_hits += 1
        return records

    def _cache_put(self, cache: Dict, name: str, records: list) -> None:
        if not records:
            return
        ttl = min(r.ttl for r in records)
        cache[name] = (self._now() + ttl, records)

    def flush_cache(self) -> None:
        self._a_cache.clear()
        self._mx_cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve_a(self, name: str) -> List[ARecord]:
        """A query.  Raises NXDomain; returns [] for NODATA."""
        name = normalize_name(name)
        cached = self._cache_get(self._a_cache, name)
        if cached is not None:
            return list(cached)
        self.queries += 1
        self._check_broken(name)
        self._check_faults("A", name)
        zone = self.zones.zone_for(name)
        if zone is None:
            self.query_log.append(("A", name, "NXDOMAIN"))
            raise NXDomain(name)
        self._check_lame("A", zone.apex)
        records = zone.a_records(name)
        if not records and name not in zone.names() and name != zone.apex:
            self.query_log.append(("A", name, "NXDOMAIN"))
            raise NXDomain(name)
        self.query_log.append(
            ("A", name, ", ".join(str(r.address) for r in records) or "NODATA")
        )
        self._cache_put(self._a_cache, name, records)
        return records

    def resolve_address(self, name: str) -> IPv4Address:
        """Resolve a hostname to its first A address; raises on NODATA."""
        records = self.resolve_a(name)
        if not records:
            raise NXDomain(f"{name} has no A record")
        return records[0].address

    def resolve_mx(self, domain: str) -> MXAnswer:
        """MX query with (possibly elided) glue in the additional section."""
        domain = normalize_name(domain)
        cached = self._cache_get(self._mx_cache, domain)
        if cached is not None:
            records = list(cached)
        else:
            self.queries += 1
            self._check_broken(domain)
            self._check_faults("MX", domain)
            zone = self.zones.zone_for(domain)
            if zone is None:
                self.query_log.append(("MX", domain, "NXDOMAIN"))
                raise NXDomain(domain)
            self._check_lame("MX", zone.apex)
            records = zone.mx_records(domain)
            self.query_log.append(
                (
                    "MX",
                    domain,
                    "; ".join(
                        f"MX {r.preference} {r.exchange}"
                        for r in sorted(records, key=lambda r: r.preference)
                    )
                    or "NODATA",
                )
            )
            self._cache_put(self._mx_cache, domain, records)
        additional: Dict[str, IPv4Address] = {}
        for mx in records:
            if self.glue_elision_rate > 0 and self._rng is not None:
                if self._rng.random() < self.glue_elision_rate:
                    continue  # server elided the glue record
            try:
                a_records = self.resolve_a(mx.exchange)
            except DNSError:
                continue
            if a_records:
                additional[mx.exchange] = a_records[0].address
        return MXAnswer(name=domain, records=records, additional=additional)

    def __repr__(self) -> str:
        return (
            f"StubResolver(queries={self.queries}, "
            f"cache_hits={self.cache_hits})"
        )
