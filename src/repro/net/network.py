"""The virtual internet: address routing, connections and latency.

:class:`VirtualInternet` is a registry mapping IPv4 addresses to
:class:`~repro.net.host.VirtualHost` instances plus a latency model.  It
offers the two primitives the rest of the system needs:

* ``connect(src, dst, port)`` — TCP-style connect, yielding a
  :class:`~repro.net.host.Connection` or raising
  :class:`~repro.net.host.ConnectionRefused` / ``HostUnreachable``; and
* ``syn_probe(dst, port)`` — a zmap-style half-open probe used by the
  banner-grab scanner, returning whether the port answered.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .address import IPv4Address
from .host import (
    Connection,
    ConnectionRefused,
    HostUnreachable,
    NetError,
    VirtualHost,
)
from .latency import LatencyModel, ZeroLatency


class VirtualInternet:
    """Routes connections between registered hosts."""

    def __init__(self, latency: Optional[LatencyModel] = None) -> None:
        self._hosts_by_address: Dict[IPv4Address, VirtualHost] = {}
        self._hosts_by_name: Dict[str, VirtualHost] = {}
        self.latency = latency if latency is not None else ZeroLatency()
        self.connections_attempted = 0
        self.connections_established = 0
        self.connections_refused = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, host: VirtualHost) -> VirtualHost:
        """Attach a host; all of its addresses become routable."""
        if host.name in self._hosts_by_name:
            raise NetError(f"duplicate host name {host.name!r}")
        for address in host.addresses:
            if address in self._hosts_by_address:
                owner = self._hosts_by_address[address].name
                raise NetError(
                    f"address {address} already owned by host {owner!r}"
                )
        self._hosts_by_name[host.name] = host
        for address in host.addresses:
            self._hosts_by_address[address] = host
        return host

    def unregister(self, host: VirtualHost) -> None:
        self._hosts_by_name.pop(host.name, None)
        for address in host.addresses:
            self._hosts_by_address.pop(address, None)

    def host_at(self, address: IPv4Address) -> Optional[VirtualHost]:
        return self._hosts_by_address.get(address)

    def host_named(self, name: str) -> Optional[VirtualHost]:
        return self._hosts_by_name.get(name)

    @property
    def hosts(self) -> Iterable[VirtualHost]:
        return self._hosts_by_name.values()

    @property
    def num_hosts(self) -> int:
        return len(self._hosts_by_name)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connect(
        self, source: IPv4Address, destination: IPv4Address, port: int
    ) -> Connection:
        """Open a connection; raises on refusal/unreachability."""
        self.connections_attempted += 1
        host = self._hosts_by_address.get(destination)
        if host is None or not host.up:
            raise HostUnreachable(f"no route to {destination}")
        try:
            session = host.accept(port, source)
        except ConnectionRefused:
            self.connections_refused += 1
            raise
        self.connections_established += 1
        return Connection(source, destination, port, session)

    def syn_probe(self, destination: IPv4Address, port: int) -> bool:
        """zmap-style SYN probe: ``True`` iff something listens on the port.

        Unlike :meth:`connect` this never materialises a session, mirroring
        how the scans.io banner-grab dataset was produced.
        """
        host = self._hosts_by_address.get(destination)
        return host is not None and host.is_listening(port)

    def rtt(self, source: IPv4Address, destination: IPv4Address) -> float:
        """Round-trip latency between two addresses, in seconds."""
        return self.latency.rtt(source, destination)

    def __repr__(self) -> str:
        return (
            f"VirtualInternet(hosts={self.num_hosts}, "
            f"established={self.connections_established}, "
            f"refused={self.connections_refused})"
        )
