"""Bench: regenerate Figure 5 (benign delivery delays on a real deployment)."""

from repro.core.deployment import run_deployment_experiment
from repro.core.reports import figure5_text

from _util import emit


def run_experiment():
    return run_deployment_experiment(
        threshold=300.0, num_messages=2000, duration_days=120.0, seed=5
    )


def test_figure5_deployment_cdf(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=2, iterations=1)
    cdf = result.delay_cdf()
    emit(
        "Figure 5 — CDF of benign email delivery delay, threshold 300 s",
        figure5_text(cdf, result.threshold),
    )

    # "even with greylisting configured on 300 seconds (5 minutes), only
    # half of the messages get delivered in less than 10 minutes."
    assert 0.35 <= cdf.at(600.0) <= 0.70

    # "some messages are delivered with over 50 minutes of delay"
    assert cdf.at(3000.0) < 0.97

    # "and some even beyond that"
    assert cdf.max > 7200.0

    # The benign curve rises far more slowly than the malware curve of
    # Figure 3 (which passes ~50%+ within 600 s of its *first retry* and
    # has a hard floor at the threshold).
    assert min(result.delays) >= 300.0

    # Deployment health numbers surrounding the figure.
    assert result.delivered + result.lost == result.num_messages
    assert result.loss_rate < 0.10
